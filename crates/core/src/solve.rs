//! The per-sample buffer-minimisation solver.
//!
//! For one Monte-Carlo sample the paper solves two ILPs (eqs. (8)–(13) and
//! (14)–(17)): first minimise the number of adjusted buffers `Σ c_i`, then
//! — with that count as a budget — minimise the total tuning magnitude.
//! This module solves the same problems exactly but exploits their
//! structure:
//!
//! * **Localisation.** Only constraints violated at `x = 0` force tunings.
//!   In any *minimal* solution, every connected component of the tuned set
//!   (in the constraint graph) touches a violated constraint — otherwise
//!   zeroing that component keeps feasibility and is smaller.  A component
//!   of `m` tuned buffers therefore lies within `m` hops of a violated
//!   endpoint, so solving inside a radius-`R` region is globally optimal as
//!   soon as the optimum count is `≤ R`; the region is grown until that
//!   holds (or it saturates its connected component, proving
//!   infeasibility).
//! * **Support-set branch and bound.** Inside a region the search branches
//!   on "buffer is adjusted / not adjusted" ([`search`] module).
//!   Feasibility of a candidate support is a bounded difference-constraint
//!   system — [`psbi_timing::DiffSolver`] decides it in near-linear time —
//!   and a matching over still-uncovered violated constraints gives a
//!   vertex-cover lower bound.  Tie-breaking in the search is pinned (see
//!   `search`), so the returned support is a pure function of the region
//!   system — the property incremental replay relies on.
//! * **Value concentration.** With the budget fixed, `min Σ|x_i − a_i|` is
//!   solved as a MILP ([`psbi_milp`]) with indicator constraints — the
//!   exact formulation of the paper's eqs. (14)–(21) — on the small region,
//!   warm-started with the search's known-feasible witness (identically in
//!   cold and incremental runs, so the warm start is result-neutral
//!   between the two modes).
//!
//! # Incremental cross-pass state
//!
//! Region *discovery* (violation collection, BFS region growth, constraint
//! attachment) is split from region *solving* so a [`ChipSolveState`] can
//! carry decompositions, optimal support sets and warm witnesses from one
//! pass to the next — and, through the flow's state arena, across adjacent
//! targets of a fleet sweep.  Every reuse is guarded by an exact value
//! comparison of the inputs the cached artefact was derived from (the
//! invalidation keys are tabulated in [`state`]'s docs); a mismatch falls
//! back to the cold path, so results are bit-identical with the cache on,
//! off (`PSBI_NO_INCREMENTAL=1`), or partially hitting.
//!
//! # Entry surface: request in, plan/execute underneath
//!
//! Everything above is driven through **one** entry point:
//! [`SampleSolver::solve`] takes a [`SolveRequest`] carrying the
//! constraint view, the buffer space, the push objective, the limits and
//! the optional cache tiers (per-chip [`ChipSolveState`], cross-chip
//! [`RegionMemo`]) as fields — replacing the former
//! `solve_view` / `solve_view_with_diag` / `solve_view_cached` /
//! `solve_view_memo` ladder, which survives only as deprecated wrappers.
//!
//! Underneath, a solve is an explicit plan/execute loop:
//! [`SampleSolver::begin`] returns a [`SolveSession`];
//! [`SolveSession::plan`] resolves the round's regions against the cache
//! tiers and yields the ones that still need searching as self-contained
//! [`RegionTask`]s; [`SampleSolver::execute`] searches a batch of tasks —
//! inline, or fanned out across a rayon pool when one is supplied — and
//! [`SolveSession::commit`] applies the outcomes **in pinned region
//! order**, never completion order.  Region searching is a pure function
//! of each task (warm-state independent, pinned tie-breaking — the same
//! properties the memo tier relies on), so fan-out changes only the wall
//! clock, never a byte of any result.  Callers that also hold a
//! cross-chip [`RegionMemo`] (the flow's sample chunks) drive one session
//! per chip to completion in chip order — so each chip's memo publishes
//! land before the next chip plans — and fan out only within a round's
//! independent tasks.
//!
//! The generic big-M MILP formulation of the whole problem is also
//! available ([`SampleSolver::solve_reference_milp`]) and is used by tests
//! to cross-validate the specialised path.

use psbi_milp::{Model, Op, Status};
use psbi_timing::feasibility::{Arc as FeasArc, DiffSolver};
use psbi_timing::{
    ConstraintKind, ConstraintsView, IntegerConstraints, SequentialGraph, Violation,
};
use rayon::prelude::*;
use std::sync::{Arc, Mutex};

mod memo;
mod search;
mod state;
#[cfg(test)]
mod tests;

use memo::MemoKey;
pub use memo::RegionMemo;
use search::{run_support_search, PruneScratch, SearchPhase, SearchStats, SupportSearch};
use state::{CachedOutcome, CachedRegion};
pub use state::{ChipSolveState, PassDiagnostics};

/// One solver stage's observability guards: a trace span plus a
/// wall-clock histogram timer under the same `solve.stage.*` name.  Both
/// are single-relaxed-load no-ops while disarmed — the solve reads no
/// clock at all unless the obs registry or trace sink is armed.
struct StageObs {
    _span: psbi_obs::Span,
    _timer: psbi_obs::metrics::Timer,
}

#[inline]
fn stage_obs(name: &'static str) -> StageObs {
    StageObs {
        _span: psbi_obs::Span::enter(name),
        _timer: psbi_obs::metrics::timer(name),
    }
}

/// Which buffers exist and their tuning windows (in steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSpace {
    /// Per FF: does it (still) have a tuning buffer?
    pub has_buffer: Vec<bool>,
    /// Per FF: inclusive tuning bounds in steps (only meaningful where
    /// `has_buffer`).  Must contain 0 so that "not adjusted" is feasible.
    pub bounds: Vec<(i64, i64)>,
}

impl BufferSpace {
    /// Every FF gets a buffer with the paper's step-1 floating window: the
    /// window of width `steps` must contain both 0 and the tuning value, so
    /// the value ranges over `[-steps, steps]`.
    pub fn floating(n_ffs: usize, steps: i64) -> Self {
        Self {
            has_buffer: vec![true; n_ffs],
            bounds: vec![(-steps, steps); n_ffs],
        }
    }

    /// Number of FFs with buffers.
    pub fn num_buffers(&self) -> usize {
        self.has_buffer.iter().filter(|b| **b).count()
    }

    /// Validates that all active windows contain zero.
    ///
    /// # Errors
    ///
    /// Returns the index of the first offending FF.
    pub fn validate(&self) -> Result<(), usize> {
        for (i, has) in self.has_buffer.iter().enumerate() {
            if *has {
                let (lo, hi) = self.bounds[i];
                if lo > 0 || hi < 0 {
                    return Err(i);
                }
            }
        }
        Ok(())
    }
}

/// Secondary objective after the buffer count is minimised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PushObjective<'a> {
    /// Stop after minimising the count (paper §III-A1 / §III-B1).
    None,
    /// Minimise `Σ|x_i|` (paper §III-A3).
    ToZero,
    /// Minimise `Σ|x_i − a_i|` with per-FF targets (paper §III-B2).
    ToTargets(&'a [f64]),
}

/// Tunable solver limits.
///
/// `Eq`/`Hash` because the options are part of every region-memo key:
/// two region systems solved under different limits may legitimately
/// return different (fallback) outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SolverOptions {
    /// Initial region radius (hops around violated constraints).
    pub region_radius: usize,
    /// Hard cap on FFs per region (beyond it results are marked inexact).
    pub region_cap: usize,
    /// Maximum branch-and-bound nodes per region before greedy fallback.
    pub bb_node_cap: usize,
    /// Regions larger than this solve the concentration MILP on the fixed
    /// optimal support instead of branching over supports.
    pub exact_push_cap: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            region_radius: 2,
            region_cap: 48,
            bb_node_cap: 3_000,
            exact_push_cap: 14,
        }
    }
}

/// Solution of one sample.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SampleResult {
    /// Can this chip be configured at all (with the given buffer space)?
    pub feasible: bool,
    /// Whether the result is proven optimal (greedy fallbacks clear this).
    pub exact: bool,
    /// Nonzero tunings `(ff_index, steps)`.
    pub tunings: Vec<(u32, i64)>,
}

impl SampleResult {
    /// Number of adjusted buffers (the paper's `n_k`).
    pub fn count(&self) -> usize {
        self.tunings.len()
    }
}

/// Normalised constraint `k(a) − k(b) ≤ bound` with FF endpoints.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegCons {
    a: u32,
    b: u32,
    bound: i64,
}

/// Reusable per-sample solver (one per worker thread).
///
/// Every workspace the per-chip pipeline needs — the SPFA solver, region
/// scratch, the branch-and-bound's per-node buffers and the saturation
/// screen's arc/bound arrays — lives in this struct and is reused across
/// chips, so a steady-state pass performs no per-chip allocation outside
/// the result vectors themselves.  Cross-*pass* state, by contrast, lives
/// in per-chip [`ChipSolveState`]s owned by the caller: workspaces are
/// checked out racily per chunk, so anything keyed to a chip identity
/// must not live here.
#[derive(Debug, Default)]
pub struct SampleSolver {
    /// The warm-started SPFA solver of the whole-chip saturation screen.
    diff: DiffSolver,
    /// Scratch: per-FF region id (or `NONE`).
    region_of: Vec<u32>,
    /// Scratch: per-FF variable slot within the saturation screen.
    var_of: Vec<u32>,
    /// Scratch: visited stamp for BFS.
    dist: Vec<u32>,
    /// Scratch: violated constraints of the current chip.
    violated: Vec<Violation>,
    /// Scratch: per-edge visit stamp for region-constraint attachment.
    edge_stamp: Vec<u32>,
    /// Current epoch for `edge_stamp`.
    epoch: u32,
    /// Scratch for the whole-chip saturation screen.
    fx_vars: Vec<u32>,
    fx_arcs: Vec<FeasArc>,
    fx_bounds: Vec<(i64, i64)>,
    /// The inline region-search workspace (sequential `execute` path).
    search: SearchScratch,
    /// Extra search workspaces, minted on demand when a task batch fans
    /// out across a thread pool and parked here between batches.
    extra: Mutex<Vec<SearchScratch>>,
}

const NONE: u32 = u32::MAX;

/// Per-round accumulator of the region growth loop.
struct RoundAcc {
    tunings: Vec<(u32, i64)>,
    exact: bool,
    need_radius: usize,
}

/// Reusable workspace of one region search: a difference-constraint
/// solver plus the per-node buffers every feasibility probe shares.  One
/// lives inline in each [`SampleSolver`] (the sequential `execute` path);
/// extras are minted on demand when a task batch fans out across a thread
/// pool, so concurrent searches never share mutable scratch.  Searches
/// are warm-state independent by contract (the memo tier relies on
/// exactly that purity), so which scratch instance a task lands on can
/// never change its outcome.
#[derive(Debug, Default)]
struct SearchScratch {
    diff: DiffSolver,
    /// Per-FF variable slot within a support check.
    var_of: Vec<u32>,
    /// Per-node scratch reused by every support-search probe.
    ss_vars: Vec<u32>,
    ss_slot: Vec<u32>,
    ss_arcs: Vec<FeasArc>,
    ss_bounds: Vec<(i64, i64)>,
    /// Pruning-machinery buffers (coverage bitsets, guard links).
    ss_prune: PruneScratch,
}

impl SearchScratch {
    /// Region-*solving* half: the support branch and bound, as a pure
    /// function of (region FFs, materialised constraints, tuning windows,
    /// limits).  The outcome is push-independent — what makes it cacheable
    /// across passes with different objectives — and warm-state
    /// independent, what makes it safe to run on any scratch from any
    /// thread.
    fn search_region(
        &mut self,
        ffs: &[u32],
        cons: &[RegCons],
        space: &BufferSpace,
        opts: &SolverOptions,
        prune: bool,
    ) -> (CachedOutcome, SearchStats) {
        let m = ffs.len();
        // Map ff -> local slot.
        self.var_of.clear();
        self.var_of.resize(space.has_buffer.len(), NONE);
        for (slot, &ff) in ffs.iter().enumerate() {
            self.var_of[ff as usize] = slot as u32;
        }
        let violated_local: Vec<usize> = cons
            .iter()
            .enumerate()
            .filter(|(_, c)| c.bound < 0)
            .map(|(i, _)| i)
            .collect();

        // Branch and bound over supports.  The per-node buffers (variable
        // maps, arc and bound arrays) come from this scratch, so
        // thousands of feasibility probes share four allocations.
        let mut search = SupportSearch {
            solver: &mut self.diff,
            var_of: &self.var_of,
            region_ffs: ffs,
            cons,
            violated: &violated_local,
            bounds: &space.bounds,
            best: None,
            node_cap: opts.bb_node_cap,
            exact: true,
            prune,
            stats: SearchStats::default(),
            vars_scratch: std::mem::take(&mut self.ss_vars),
            slot_scratch: std::mem::take(&mut self.ss_slot),
            arcs_scratch: std::mem::take(&mut self.ss_arcs),
            bounds_scratch: std::mem::take(&mut self.ss_bounds),
            ps: std::mem::take(&mut self.ss_prune),
        };
        let phase = run_support_search(&mut search, m, opts.region_cap);
        let stats = search.stats;
        // Armed-only observability (byte-neutral): node counts are
        // deterministic per region system + prune mode, unlike wall time.
        psbi_obs::metrics::counter_add("solve.search.nodes", stats.nodes);
        psbi_obs::metrics::counter_add("solve.search.pruned.bound", stats.pruned_bound);
        psbi_obs::metrics::counter_add("solve.search.pruned.dominance", stats.pruned_dominance);
        psbi_obs::metrics::counter_add("solve.search.pruned.symmetry", stats.pruned_symmetry);
        // Return the per-node scratch before the next task needs it.
        let (sv, ssl, sa, sb, sp) = search.into_scratch();
        self.ss_vars = sv;
        self.ss_slot = ssl;
        self.ss_arcs = sa;
        self.ss_bounds = sb;
        self.ss_prune = sp;
        let outcome = match phase {
            SearchPhase::Infeasible => CachedOutcome::Infeasible,
            SearchPhase::Fallback { support, witness } => CachedOutcome::Feasible {
                count: support.len(),
                support,
                witness,
                exact: false,
            },
            SearchPhase::Best {
                count,
                support,
                witness,
                exact,
            } => CachedOutcome::Feasible {
                count,
                support,
                witness,
                exact,
            },
        };
        (outcome, stats)
    }
}

/// One sample solve, fully described: the chip's constraint system, the
/// buffer space, the push objective, the solver limits, and the optional
/// cache / execution tiers.
///
/// Build with [`SolveRequest::new`] (plain space) or
/// [`SolveRequest::shared`] (a shared `Arc` space epoch — required for
/// per-chip state), then chain [`SolveRequest::memo`],
/// [`SolveRequest::state`] and [`SolveRequest::pool`] as needed.  Every
/// tier is a field of the request instead of a separate entry point; the
/// result is bit-identical for any combination of attached tiers.
pub struct SolveRequest<'a> {
    sg: &'a SequentialGraph,
    ic: ConstraintsView<'a>,
    space: &'a BufferSpace,
    /// The `Arc` identity of `space` when the caller solves against a
    /// shared space epoch — what per-chip state revalidation keys on.
    epoch: Option<&'a Arc<BufferSpace>>,
    push: PushObjective<'a>,
    opts: &'a SolverOptions,
    memo: Option<&'a RegionMemo>,
    state: Option<&'a mut ChipSolveState>,
    pool: Option<&'a rayon::ThreadPool>,
    search_prune: bool,
}

impl<'a> SolveRequest<'a> {
    /// A request against a plain (unshared) buffer space.  Per-chip state
    /// cannot ride such a request — revalidation needs the space's `Arc`
    /// identity; use [`SolveRequest::shared`] for that.
    pub fn new(
        sg: &'a SequentialGraph,
        ic: ConstraintsView<'a>,
        space: &'a BufferSpace,
        push: PushObjective<'a>,
        opts: &'a SolverOptions,
    ) -> Self {
        Self {
            sg,
            ic,
            space,
            epoch: None,
            push,
            opts,
            memo: None,
            state: None,
            pool: None,
            search_prune: true,
        }
    }

    /// A request against a shared space epoch (the flow's per-pass
    /// `Arc<BufferSpace>`), enabling [`SolveRequest::state`].
    pub fn shared(
        sg: &'a SequentialGraph,
        ic: ConstraintsView<'a>,
        space: &'a Arc<BufferSpace>,
        push: PushObjective<'a>,
        opts: &'a SolverOptions,
    ) -> Self {
        let mut req = Self::new(sg, ic, space.as_ref(), push, opts);
        req.epoch = Some(space);
        req
    }

    /// Attaches the flow-level cross-chip [`RegionMemo`] tier.
    #[must_use]
    pub fn memo(mut self, memo: &'a RegionMemo) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Attaches the chip's persistent cross-pass [`ChipSolveState`] tier.
    /// Requires a request built with [`SolveRequest::shared`].
    #[must_use]
    pub fn state(mut self, state: &'a mut ChipSolveState) -> Self {
        debug_assert!(
            self.epoch.is_some(),
            "per-chip state rides a shared space epoch; build with SolveRequest::shared"
        );
        self.state = Some(state);
        self
    }

    /// Fans region searches out on `pool` instead of running them inline
    /// on the calling thread.  Results are bit-identical either way.
    #[must_use]
    pub fn pool(mut self, pool: &'a rayon::ThreadPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Enables or disables the search's dominance / symmetry / bitset
    /// pruning rules (see [`solve::search`](self) module docs).  On by
    /// default; both modes return bit-identical results — the off mode is
    /// the byte-parity reference the `PSBI_NO_SEARCH_PRUNE=1` flow hatch
    /// maps to.  Deliberately **not** part of [`SolverOptions`]: the
    /// options struct keys every region-memo entry, and two prune modes
    /// of the same region system produce the same outcome, so keying on
    /// the mode would only split the memo for nothing.
    #[must_use]
    pub fn search_prune(mut self, on: bool) -> Self {
        self.search_prune = on;
        self
    }
}

/// Result of one [`SampleSolver::solve`]: the sample's solution plus the
/// counters the solve accumulated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SolveOutcome {
    /// The sample's solution.
    pub result: SampleResult,
    /// Workload / cache-efficacy counters of this solve (see
    /// [`PassDiagnostics`] for which of them are deterministic).
    pub diag: PassDiagnostics,
}

/// One region search, detached from its session: the region's FFs (pinned
/// BFS order) and its materialised constraint system — the exact inputs
/// of the pure search function.  Tasks own their data so a batch of them
/// can fan out across threads while their sessions stay behind.
#[derive(Debug, Clone)]
pub struct RegionTask {
    ffs: Vec<u32>,
    cons: Vec<RegCons>,
}

/// One executed region search, opaque to callers: produced (in task
/// order) by [`SampleSolver::execute`], consumed by
/// [`SolveSession::commit`].  Carries the search's node/prune counters
/// so `commit` can fold them into [`PassDiagnostics`] — replayed and
/// memo-hit regions never reach `execute` and correctly contribute zero
/// nodes.
#[derive(Debug, Clone)]
pub struct RegionOutcome {
    out: Arc<CachedOutcome>,
    stats: SearchStats,
}

/// How one planned region obtains its outcome at commit time.
enum Slot {
    /// Replayed from the chip's own history: the outcome is already in
    /// the cached region, nothing to record.
    Replay,
    /// Cross-chip memo hit, recorded into the chip state at commit.
    Hit(Arc<CachedOutcome>),
    /// Fresh search: the outcome arrives from [`SampleSolver::execute`]
    /// at this task index and is published under the captured memo key.
    Fresh(usize, Option<MemoKey>),
}

/// An in-flight sample solve, split at the region boundary.
///
/// [`SampleSolver::begin`] runs violation discovery and the whole-chip
/// screen and returns a session; then, until [`SolveSession::is_done`],
/// [`SolveSession::plan`] yields the current round's outstanding searches
/// as [`RegionTask`]s, [`SampleSolver::execute`] runs them (inline or on
/// a pool), and [`SolveSession::commit`] applies the outcomes **in pinned
/// region order** — which keeps results bit-identical regardless of the
/// order tasks actually completed in.  [`SolveSession::finish`] yields
/// the [`SolveOutcome`].
///
/// The split exists so a caller driving many chips at once (the flow's
/// sample chunks) can aggregate the tasks of several sessions into one
/// batch and fan the whole batch out together; [`SampleSolver::solve`] is
/// the single-chip loop over the same pieces.
pub struct SolveSession<'a> {
    req: SolveRequest<'a>,
    /// Violated constraints of the chip (taken from the solver's scratch
    /// at begin, returned when the session concludes).
    violated: Vec<Violation>,
    diag: PassDiagnostics,
    radius: usize,
    round: usize,
    planned: bool,
    /// Cold-path decomposition of the current round.
    cold_regions: Vec<Region>,
    /// Cached-path round entry index in the chip state.
    entry: usize,
    /// Materialised constraint system per region, in region order.
    cons: Vec<Vec<RegCons>>,
    /// Outcome source per region, in region order.
    slots: Vec<Slot>,
    n_tasks: usize,
    done: Option<SampleResult>,
}

/// Resolves one non-replayable region against the cross-chip memo tier:
/// a hit (exact key equality) becomes an immediate outcome; a miss (or no
/// memo) appends a [`RegionTask`] for `execute`.
fn plan_slot(
    region: &Region,
    cons: &[RegCons],
    space: &BufferSpace,
    opts: &SolverOptions,
    memo: Option<&RegionMemo>,
    diag: &mut PassDiagnostics,
    tasks: &mut Vec<RegionTask>,
) -> Slot {
    if let Some(memo) = memo {
        let key = MemoKey::capture(region, cons, space, opts);
        if let Some(hit) = memo.lookup(&key) {
            diag.cross_chip_hits += 1;
            psbi_obs::metrics::counter_add("solve.memo.hit", 1);
            let outcome = if psbi_fault::failpoint!("memo.replay.corrupt") {
                // Injected cache corruption: a claimed-feasible outcome
                // whose support is empty.  Downstream this yields a chip
                // "fixed" with no tunings — exactly the class of silent
                // wrong answer the independent verifier must flag.
                Arc::new(CachedOutcome::Feasible {
                    count: 0,
                    support: Vec::new(),
                    witness: Vec::new(),
                    exact: true,
                })
            } else {
                hit
            };
            return Slot::Hit(outcome);
        }
        psbi_obs::metrics::counter_add("solve.memo.miss", 1);
        tasks.push(RegionTask {
            ffs: region.ffs.clone(),
            cons: cons.to_vec(),
        });
        Slot::Fresh(tasks.len() - 1, Some(key))
    } else {
        tasks.push(RegionTask {
            ffs: region.ffs.clone(),
            cons: cons.to_vec(),
        });
        Slot::Fresh(tasks.len() - 1, None)
    }
}

/// Publishes a freshly searched outcome to the cross-chip memo, when both
/// the memo tier and a captured key are present.
fn publish(memo: Option<&RegionMemo>, key: Option<MemoKey>, outcome: &Arc<CachedOutcome>) {
    if let (Some(memo), Some(key)) = (memo, key) {
        memo.publish(key, Arc::clone(outcome));
        psbi_obs::metrics::counter_add("solve.memo.publish", 1);
    }
}

impl<'a> SolveSession<'a> {
    /// Whether the solve has produced its final result.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }

    /// The buffer space this session solves against.
    pub fn space(&self) -> &'a BufferSpace {
        self.req.space
    }

    /// The solver limits this session runs under.
    pub fn opts(&self) -> &'a SolverOptions {
        self.req.opts
    }

    /// The thread pool attached to the request, if any.
    pub fn pool(&self) -> Option<&'a rayon::ThreadPool> {
        self.req.pool
    }

    /// Whether this session's fresh searches run with pruning enabled
    /// (see [`SolveRequest::search_prune`]).
    pub fn search_prune(&self) -> bool {
        self.req.search_prune
    }

    /// Plans the current round: builds (or replays) the region
    /// decomposition, resolves every region against the cache tiers, and
    /// returns the regions that still need a fresh search as
    /// self-contained [`RegionTask`]s.  Must be followed by exactly one
    /// [`SolveSession::commit`] carrying the executed outcomes.
    pub fn plan(&mut self, solver: &mut SampleSolver) -> Vec<RegionTask> {
        assert!(!self.is_done(), "plan on a finished session");
        debug_assert!(!self.planned, "plan called twice without a commit");
        let _span = psbi_obs::Span::enter("solve.region.plan");
        self.cons.clear();
        self.slots.clear();
        self.cold_regions.clear();
        let sg = self.req.sg;
        let ic = self.req.ic;
        let space = self.req.space;
        let opts = self.req.opts;
        let memo = self.req.memo;
        let radius = self.radius;
        let mut tasks = Vec::new();
        match self.req.state.as_deref_mut() {
            Some(st) => {
                let entry = match st.round_index(radius) {
                    Some(i) => {
                        self.diag.regions_reused += st.rounds[i].regions.len() as u64;
                        i
                    }
                    None => {
                        let regions = {
                            let _obs = stage_obs("solve.stage.discovery");
                            solver.collect_regions(sg, space, &self.violated, radius)
                        };
                        let cached = regions.into_iter().map(CachedRegion::new).collect();
                        st.insert_round(radius, opts.region_radius, cached)
                    }
                };
                self.entry = entry;
                for cr in st.rounds[entry].regions.iter_mut() {
                    self.diag.regions_total += 1;
                    if cr.region.ffs.len() > opts.region_cap {
                        self.diag.regions_saturated += 1;
                    }
                    let cons = materialize_cons(&cr.region, ic, space);
                    if cr.outcome_replayable(&cons, space) {
                        // Count only replayed *supports*: an Infeasible
                        // replay skips the search too, but there is no
                        // support set in it.
                        if matches!(cr.outcome.as_deref(), Some(CachedOutcome::Feasible { .. })) {
                            self.diag.supports_rehit += 1;
                        }
                        self.slots.push(Slot::Replay);
                    } else {
                        self.slots.push(plan_slot(
                            &cr.region,
                            &cons,
                            space,
                            opts,
                            memo,
                            &mut self.diag,
                            &mut tasks,
                        ));
                    }
                    self.cons.push(cons);
                }
            }
            None => {
                let regions = {
                    let _obs = stage_obs("solve.stage.discovery");
                    solver.collect_regions(sg, space, &self.violated, radius)
                };
                for region in &regions {
                    self.diag.regions_total += 1;
                    if region.ffs.len() > opts.region_cap {
                        self.diag.regions_saturated += 1;
                    }
                    let cons = materialize_cons(region, ic, space);
                    self.slots.push(plan_slot(
                        region,
                        &cons,
                        space,
                        opts,
                        memo,
                        &mut self.diag,
                        &mut tasks,
                    ));
                    self.cons.push(cons);
                }
                self.cold_regions = regions;
            }
        }
        self.n_tasks = tasks.len();
        self.planned = true;
        tasks
    }

    /// Commits one executed round: outcomes are recorded into the cache
    /// tiers, published to the memo and applied **in pinned region
    /// order** (never completion order), then the round accumulator
    /// decides growth — the session either concludes or re-arms for the
    /// next round at the grown radius (a region's optimal count exceeding
    /// the radius provably fits within radius = count; two rounds
    /// suffice, a third guards the node-capped inexact case).
    pub fn commit(&mut self, solver: &mut SampleSolver, outcomes: &[RegionOutcome]) {
        assert!(self.planned, "commit without a plan");
        assert_eq!(
            outcomes.len(),
            self.n_tasks,
            "commit needs exactly one outcome per planned task"
        );
        for o in outcomes {
            self.diag.search_nodes += o.stats.nodes;
            self.diag.search_pruned_bound += o.stats.pruned_bound;
            self.diag.search_pruned_dominance += o.stats.pruned_dominance;
            self.diag.search_pruned_symmetry += o.stats.pruned_symmetry;
        }
        let space = self.req.space;
        let push = self.req.push;
        let opts = self.req.opts;
        let memo = self.req.memo;
        let radius = self.radius;
        let mut acc = RoundAcc {
            tunings: Vec::new(),
            exact: true,
            need_radius: radius,
        };
        match self.req.state.as_deref_mut() {
            Some(st) => {
                for (i, cr) in st.rounds[self.entry].regions.iter_mut().enumerate() {
                    let cons = &self.cons[i];
                    let outcome = match std::mem::replace(&mut self.slots[i], Slot::Replay) {
                        Slot::Replay => {
                            Arc::clone(cr.outcome.as_ref().expect("replayable slot has an outcome"))
                        }
                        Slot::Hit(hit) => {
                            cr.record(cons, space, Arc::clone(&hit));
                            hit
                        }
                        Slot::Fresh(task, key) => {
                            let fresh = Arc::clone(&outcomes[task].out);
                            cr.record(cons, space, Arc::clone(&fresh));
                            publish(memo, key, &fresh);
                            fresh
                        }
                    };
                    // `cr` borrows the state arena slot, `solver` owns the
                    // push scratch — disjoint, so the objective runs in
                    // place.
                    solver.apply_outcome(
                        &cr.region, cons, &outcome, space, push, opts, radius, &mut acc,
                    );
                }
            }
            None => {
                for (i, region) in self.cold_regions.iter().enumerate() {
                    let cons = &self.cons[i];
                    let outcome = match std::mem::replace(&mut self.slots[i], Slot::Replay) {
                        Slot::Replay => unreachable!("cold rounds never replay"),
                        Slot::Hit(hit) => hit,
                        Slot::Fresh(task, key) => {
                            let fresh = Arc::clone(&outcomes[task].out);
                            publish(memo, key, &fresh);
                            fresh
                        }
                    };
                    solver
                        .apply_outcome(region, cons, &outcome, space, push, opts, radius, &mut acc);
                }
            }
        }
        self.planned = false;
        if acc.need_radius == radius || self.round == 2 {
            let exact = acc.exact && acc.need_radius == radius;
            self.conclude(
                solver,
                SampleResult {
                    feasible: true,
                    exact,
                    tunings: acc.tunings,
                },
            );
        } else {
            self.radius = acc.need_radius;
            self.round += 1;
        }
    }

    /// The final outcome.
    ///
    /// # Panics
    ///
    /// Panics unless [`SolveSession::is_done`].
    pub fn finish(self) -> SolveOutcome {
        SolveOutcome {
            result: self.done.expect("finish on an unfinished session"),
            diag: self.diag,
        }
    }

    /// Concludes the session with `result`, returning the violation
    /// scratch to the solver.
    fn conclude(&mut self, solver: &mut SampleSolver, result: SampleResult) {
        solver.violated = std::mem::take(&mut self.violated);
        self.done = Some(result);
    }
}

impl SampleSolver {
    /// Creates a solver with empty workspaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves one sample end to end: minimum buffer count, then
    /// (optionally) value concentration, with whichever cache and
    /// execution tiers the request carries.  This is the solver's single
    /// entry point; [`SampleSolver::begin`] / [`SolveSession::plan`] /
    /// [`SampleSolver::execute`] / [`SolveSession::commit`] are the same
    /// pipeline exposed at the region boundary, for callers interleaving
    /// several chips' searches in one batch.
    pub fn solve(&mut self, req: SolveRequest<'_>) -> SolveOutcome {
        let pool = req.pool;
        let mut session = self.begin(req);
        while !session.is_done() {
            let tasks = session.plan(self);
            let outcomes = self.execute(
                &tasks,
                session.space(),
                session.opts(),
                pool,
                session.search_prune(),
            );
            session.commit(self, &outcomes);
        }
        session.finish()
    }

    /// Starts a sample solve: violation discovery, chip-state
    /// revalidation and the whole-chip saturation screen.  The returned
    /// session has either concluded already (no violations, or provably
    /// unfixable) or awaits plan/execute/commit rounds.
    pub fn begin<'a>(&mut self, mut req: SolveRequest<'a>) -> SolveSession<'a> {
        let n = req.sg.n_ffs;
        debug_assert_eq!(req.space.has_buffer.len(), n);

        // 1. Violated constraints at x = 0 — the chip's fingerprint
        // (reused scratch, returned when the session concludes).
        let mut violated = std::mem::take(&mut self.violated);
        {
            let _obs = stage_obs("solve.stage.discovery");
            req.ic.collect_violations(req.sg, &mut violated);
        }
        // Chip-level revalidation clears any cached decomposition whose
        // invalidation keys no longer match; everything that survives is
        // safe to replay in `plan`.
        if let Some(st) = req.state.as_deref_mut() {
            let epoch = req
                .epoch
                .expect("per-chip state rides a shared space epoch");
            st.revalidate(req.sg, epoch, req.opts, &violated);
        }
        let radius = req.opts.region_radius;
        let mut session = SolveSession {
            req,
            violated,
            diag: PassDiagnostics::default(),
            radius,
            round: 0,
            planned: false,
            cold_regions: Vec::new(),
            entry: 0,
            cons: Vec::new(),
            slots: Vec::new(),
            n_tasks: 0,
            done: None,
        };

        if session.violated.is_empty() {
            session.conclude(
                self,
                SampleResult {
                    feasible: true,
                    exact: true,
                    tunings: Vec::new(),
                },
            );
            return session;
        }
        // A violated constraint between two bufferless FFs is unfixable.
        for i in 0..session.violated.len() {
            let v = session.violated[i];
            if !session.req.space.has_buffer[v.a as usize]
                && !session.req.space.has_buffer[v.b as usize]
            {
                session.conclude(
                    self,
                    SampleResult {
                        feasible: false,
                        exact: true,
                        tunings: Vec::new(),
                    },
                );
                return session;
            }
        }

        // 2. Infeasibility screen at full saturation: if the chip cannot be
        // configured even with *every* buffer free, no region growth can
        // help (a negative cycle stays negative), so decide this once with
        // a single SPFA instead of growing regions toward it.  The
        // carried per-chip witness seeds the solver's warm slot; it is
        // fully re-validated there, so importing never changes the verdict.
        let fixable = {
            let _obs = stage_obs("solve.stage.screen");
            if let Some(st) = session.req.state.as_deref_mut() {
                if st.fixable_ok {
                    self.diff.import_witness(&st.fixable_witness);
                }
            }
            let fixable = self.chip_fixable(session.req.sg, session.req.ic, session.req.space);
            if let Some(st) = session.req.state.as_deref_mut() {
                if fixable {
                    if let Some(w) = self.diff.export_witness() {
                        st.fixable_witness.clear();
                        st.fixable_witness.extend_from_slice(w);
                        st.fixable_ok = true;
                    }
                }
            }
            fixable
        };
        if !fixable {
            session.conclude(
                self,
                SampleResult {
                    feasible: false,
                    exact: true,
                    tunings: Vec::new(),
                },
            );
        }
        session
    }

    /// Runs a batch of planned region searches and returns their outcomes
    /// **in task order**.  With a pool attached and at least two tasks the
    /// batch fans out across the pool's workers, each task on its own
    /// [`SearchScratch`] (minted on demand, parked between batches);
    /// otherwise the batch runs inline on the solver's own scratch.
    /// Searches are pure, so the two paths are bit-identical.
    ///
    /// Tasks from several sessions may be aggregated into one call — an
    /// outcome belongs to whichever session planned the task, at the same
    /// index within that session's slice of the batch.
    pub fn execute(
        &mut self,
        tasks: &[RegionTask],
        space: &BufferSpace,
        opts: &SolverOptions,
        pool: Option<&rayon::ThreadPool>,
        prune: bool,
    ) -> Vec<RegionOutcome> {
        if tasks.is_empty() {
            return Vec::new();
        }
        let _obs = stage_obs("solve.stage.search");
        match pool {
            Some(pool) if tasks.len() >= 2 => {
                let extra = &self.extra;
                pool.install(|| {
                    (0..tasks.len())
                        .into_par_iter()
                        .map(|i| {
                            let _span = psbi_obs::Span::enter("solve.region.task");
                            let t = &tasks[i];
                            let mut scratch = extra
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .pop()
                                .unwrap_or_default();
                            let (out, stats) =
                                scratch.search_region(&t.ffs, &t.cons, space, opts, prune);
                            extra
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(scratch);
                            RegionOutcome {
                                out: Arc::new(out),
                                stats,
                            }
                        })
                        .collect()
                })
            }
            _ => tasks
                .iter()
                .map(|t| {
                    let _span = psbi_obs::Span::enter("solve.region.task");
                    let (out, stats) = self
                        .search
                        .search_region(&t.ffs, &t.cons, space, opts, prune);
                    RegionOutcome {
                        out: Arc::new(out),
                        stats,
                    }
                })
                .collect(),
        }
    }

    /// Solves one sample from a borrowed constraint view (an
    /// [`IntegerConstraints`] or one row of a
    /// [`psbi_timing::ConstraintBatch`]), without cross-pass state.
    #[deprecated(note = "build a `SolveRequest` and call `SampleSolver::solve`")]
    pub fn solve_view(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> SampleResult {
        self.solve(SolveRequest::new(sg, ic, space, push, opts))
            .result
    }

    /// As the plain solve, accumulating the *workload* counters
    /// (`regions_total`, `regions_saturated`) into `diag`.
    #[deprecated(note = "build a `SolveRequest` and call `SampleSolver::solve`")]
    pub fn solve_view_with_diag(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        diag: &mut PassDiagnostics,
    ) -> SampleResult {
        let out = self.solve(SolveRequest::new(sg, ic, space, push, opts));
        diag.merge(&out.diag);
        out.result
    }

    /// Solves one sample with persistent per-chip state (see
    /// [`SolveRequest::state`]).
    #[deprecated(
        note = "build a `SolveRequest::shared(..).state(..)` and call `SampleSolver::solve`"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn solve_view_cached(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &Arc<BufferSpace>,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        solve_state: &mut ChipSolveState,
        diag: &mut PassDiagnostics,
    ) -> SampleResult {
        let out = self.solve(SolveRequest::shared(sg, ic, space, push, opts).state(solve_state));
        diag.merge(&out.diag);
        out.result
    }

    /// The full shared-state entry point: per-chip incremental state
    /// (optional) plus a flow-level cross-chip [`RegionMemo`] (optional).
    #[deprecated(
        note = "build a `SolveRequest` with `.memo(..)` / `.state(..)` and call `SampleSolver::solve`"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn solve_view_memo(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &Arc<BufferSpace>,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        memo: Option<&RegionMemo>,
        solve_state: Option<&mut ChipSolveState>,
        diag: &mut PassDiagnostics,
    ) -> SampleResult {
        let mut req = SolveRequest::shared(sg, ic, space, push, opts);
        if let Some(m) = memo {
            req = req.memo(m);
        }
        if let Some(st) = solve_state {
            req = req.state(st);
        }
        let out = self.solve(req);
        diag.merge(&out.diag);
        out.result
    }

    /// Applies one region's search outcome to the round accumulator:
    /// growth bookkeeping plus the pass's push objective.
    #[allow(clippy::too_many_arguments)]
    fn apply_outcome(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        outcome: &CachedOutcome,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        radius: usize,
        acc: &mut RoundAcc,
    ) {
        match outcome {
            CachedOutcome::Feasible {
                count,
                support,
                witness,
                exact,
            } => {
                if *count > radius && !region.saturated {
                    acc.need_radius = acc.need_radius.max(*count);
                }
                let tunings = {
                    let _obs = stage_obs("solve.stage.milp");
                    self.finish_region(region, cons, space, *count, support, witness, push, opts)
                };
                acc.tunings.extend(tunings);
                acc.exact &= exact;
            }
            CachedOutcome::Infeasible => {
                // The chip as a whole is fixable (screened above); a
                // region-local infeasibility means the region is too
                // small — grow it.
                acc.need_radius = acc.need_radius.max(radius * 2 + 1);
                acc.exact = false;
            }
        }
    }

    /// One SPFA over the whole circuit with every buffer free: can this
    /// chip be configured at all?
    ///
    /// Uses the warm-started solver: the witness carried for this chip
    /// (incremental mode) or left by the previous chip (workspace reuse)
    /// usually still fits, in which case this is a single `O(edges)`
    /// validation sweep with no graph build at all.
    fn chip_fixable(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
    ) -> bool {
        let n = sg.n_ffs;
        self.var_of.clear();
        self.var_of.resize(n, NONE);
        let mut vars = std::mem::take(&mut self.fx_vars);
        let mut arcs = std::mem::take(&mut self.fx_arcs);
        let mut bounds = std::mem::take(&mut self.fx_bounds);
        vars.clear();
        arcs.clear();
        bounds.clear();
        for ff in 0..n {
            if space.has_buffer[ff] {
                self.var_of[ff] = vars.len() as u32;
                vars.push(ff as u32);
            }
        }
        let root = vars.len() as u32;
        let resolve = |ff: u32, var_of: &[u32]| -> u32 {
            let v = var_of[ff as usize];
            if v == NONE {
                root
            } else {
                v
            }
        };
        // Same saturation normalisation as [`materialize_cons`]: with
        // `k(ff)` confined to its window (0 where bufferless), a bound at
        // or above `hi(from) − lo(to)` can never bind, so the arc is
        // elided — the verdict is unchanged and the SPFA graph shrinks to
        // the near-critical core.  A root–root cap is 0, so an unfixable
        // bufferless pair still trips the `bound < cap` test.
        let win = |ff: u32| -> (i64, i64) {
            if space.has_buffer[ff as usize] {
                space.bounds[ff as usize]
            } else {
                (0, 0)
            }
        };
        let mut fixable = true;
        for (e, edge) in sg.edges.iter().enumerate() {
            let vf = resolve(edge.from, &self.var_of);
            let vt = resolve(edge.to, &self.var_of);
            let (lo_f, hi_f) = win(edge.from);
            let (lo_t, hi_t) = win(edge.to);
            // Setup: k_from − k_to ≤ sb → arc to→from.
            let sb = ic.setup_bound[e];
            if sb < hi_f - lo_t {
                if vf == root && vt == root {
                    fixable = false; // cap is 0, so sb < 0: dead pair
                    break;
                }
                arcs.push(FeasArc::new(vt, vf, sb));
            }
            let hb = ic.hold_bound[e];
            if hb < hi_t - lo_f {
                if vf == root && vt == root {
                    fixable = false;
                    break;
                }
                arcs.push(FeasArc::new(vf, vt, hb));
            }
        }
        if fixable {
            bounds.extend(vars.iter().map(|&ff| space.bounds[ff as usize]));
            fixable = self.diff.feasible_bounded_warm(vars.len(), &arcs, &bounds);
        }
        self.fx_vars = vars;
        self.fx_arcs = arcs;
        self.fx_bounds = bounds;
        fixable
    }

    /// Builds regions: buffered FFs within `radius` hops of a violated
    /// constraint endpoint, split into connected components.
    ///
    /// This is the region-*discovery* half of the solve — a pure function
    /// of (`has_buffer`, ordered violated endpoints, `radius`, graph), the
    /// exact triple the decomposition cache keys on.
    fn collect_regions(
        &mut self,
        sg: &SequentialGraph,
        space: &BufferSpace,
        violated: &[Violation],
        radius: usize,
    ) -> Vec<Region> {
        let n = sg.n_ffs;
        self.dist.clear();
        self.dist.resize(n, NONE);
        let mut frontier: Vec<u32> = Vec::new();
        for v in violated {
            for ff in [v.a, v.b] {
                if space.has_buffer[ff as usize] && self.dist[ff as usize] == NONE {
                    self.dist[ff as usize] = 0;
                    frontier.push(ff);
                }
            }
        }
        // Multi-source BFS over buffered adjacency.
        let mut collected: Vec<u32> = frontier.clone();
        let mut d = 0usize;
        while d < radius && !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for v in sg.neighbors(u as usize) {
                    if space.has_buffer[v] && self.dist[v] == NONE {
                        self.dist[v] = d as u32;
                        next.push(v as u32);
                        collected.push(v as u32);
                    }
                }
            }
            frontier = next;
        }
        // Saturation: no neighbour of the collected set is buffered and
        // uncollected (the set already fills its connected components).
        // Components of the induced subgraph.
        self.region_of.clear();
        self.region_of.resize(n, NONE);
        let mut regions: Vec<Region> = Vec::new();
        for &start in &collected {
            if self.region_of[start as usize] != NONE {
                continue;
            }
            let rid = regions.len() as u32;
            let mut ffs = vec![start];
            self.region_of[start as usize] = rid;
            let mut stack = vec![start];
            let mut saturated = true;
            while let Some(u) = stack.pop() {
                for v in sg.neighbors(u as usize) {
                    if !space.has_buffer[v] {
                        continue;
                    }
                    if self.dist[v] == NONE {
                        saturated = false; // a buffered FF just outside
                        continue;
                    }
                    if self.region_of[v] == NONE {
                        self.region_of[v] = rid;
                        ffs.push(v as u32);
                        stack.push(v as u32);
                    }
                }
            }
            let mut members = ffs.clone();
            members.sort_unstable();
            regions.push(Region {
                ffs,
                members,
                cons: Vec::new(),
                saturated,
            });
        }
        // Attach constraints: any setup/hold constraint touching a region
        // FF.  An edge never spans two regions (adjacent collected FFs are
        // in the same component), so marking edges globally is safe.  The
        // per-edge marks are a reused stamp array (no per-chip allocation).
        self.epoch = self.epoch.wrapping_add(1);
        if self.edge_stamp.len() < sg.edges.len() || self.epoch == 0 {
            self.epoch = 1;
            self.edge_stamp.clear();
            self.edge_stamp.resize(sg.edges.len(), 0);
        }
        for region in regions.iter_mut() {
            for &ff in &region.ffs {
                for &e in sg
                    .out_edges(ff as usize)
                    .iter()
                    .chain(sg.in_edges(ff as usize))
                {
                    if self.edge_stamp[e as usize] == self.epoch {
                        continue;
                    }
                    self.edge_stamp[e as usize] = self.epoch;
                    let edge = &sg.edges[e as usize];
                    region.cons.push(ConsRef {
                        a: edge.from,
                        b: edge.to,
                        edge: e,
                        kind: ConstraintKind::Setup,
                    });
                    region.cons.push(ConsRef {
                        a: edge.to,
                        b: edge.from,
                        edge: e,
                        kind: ConstraintKind::Hold,
                    });
                }
            }
        }
        regions
    }

    /// Applies the push objective to a solved region.
    #[allow(clippy::too_many_arguments)]
    fn finish_region(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        space: &BufferSpace,
        count: usize,
        support: &[u32],
        witness: &[i64],
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> Vec<(u32, i64)> {
        match push {
            PushObjective::None => support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect(),
            PushObjective::ToZero => {
                self.concentrate(region, cons, space, count, support, witness, None, opts)
            }
            PushObjective::ToTargets(targets) => self.concentrate(
                region,
                cons,
                space,
                count,
                support,
                witness,
                Some(targets),
                opts,
            ),
        }
    }

    /// Solves `min Σ|k_i − a_i|` subject to the constraints and the buffer
    /// budget, as a MILP over the region (paper eqs. (14)–(21)).
    ///
    /// The MILP is warm-started with the search witness — a verified
    /// feasible point supplied identically whether the witness came from a
    /// fresh search or an incremental replay, so the warm start never
    /// distinguishes the two modes.
    #[allow(clippy::too_many_arguments)]
    fn concentrate(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        space: &BufferSpace,
        budget: usize,
        support: &[u32],
        witness: &[i64],
        targets: Option<&[f64]>,
        opts: &SolverOptions,
    ) -> Vec<(u32, i64)> {
        let m = region.ffs.len();
        let over_supports = m <= opts.exact_push_cap;
        // Very large supports (greedy fallback on oversized regions): skip
        // the MILP and keep the witness values.
        const PUSH_SUPPORT_CAP: usize = 48;
        if !over_supports && support.len() > PUSH_SUPPORT_CAP {
            return support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect();
        }
        let mut model = Model::new();
        model.node_limit = 30_000;
        // Variables for either the full region (support is chosen by the
        // model) or just the fixed optimal support.
        let active: Vec<u32> = if over_supports {
            region.ffs.clone()
        } else {
            support.to_vec()
        };
        let mut var_slot = vec![NONE; space.has_buffer.len()];
        let mut kvars = Vec::with_capacity(active.len());
        for (s, &ff) in active.iter().enumerate() {
            var_slot[ff as usize] = s as u32;
            let (lo, hi) = space.bounds[ff as usize];
            let k = model.add_var(format!("k{ff}"), lo as f64, hi as f64, 0.0, true);
            kvars.push(k);
        }
        // Witness values per active slot (0 outside the support) and the
        // support membership — the warm-start point.
        let mut kwarm = vec![0.0f64; active.len()];
        let mut in_support = vec![false; active.len()];
        for (i, ff) in support.iter().enumerate() {
            let s = var_slot[*ff as usize];
            if s != NONE {
                kwarm[s as usize] = witness[i] as f64;
                in_support[s as usize] = true;
            }
        }
        let mut warm: Vec<f64> = kwarm.clone();
        if over_supports {
            let mut cterms = Vec::with_capacity(active.len());
            for (s, &ff) in active.iter().enumerate() {
                let c = model.add_binary(format!("c{ff}"), 0.0);
                let (lo, hi) = space.bounds[ff as usize];
                let big_m = (lo.abs().max(hi.abs()) as f64).max(1.0);
                model.add_indicator(kvars[s], c, big_m);
                cterms.push((c, 1.0));
                warm.push(if in_support[s] { 1.0 } else { 0.0 });
            }
            model.add_cons(cterms, Op::Le, budget as f64);
        }
        for c in cons {
            let sa = var_slot[c.a as usize];
            let sb = var_slot[c.b as usize];
            let mut terms = Vec::new();
            if sa != NONE {
                terms.push((kvars[sa as usize], 1.0));
            }
            if sb != NONE {
                terms.push((kvars[sb as usize], -1.0));
            }
            if terms.is_empty() {
                continue; // root-root, checked during feasibility
            }
            model.add_cons(terms, Op::Le, c.bound as f64);
        }
        for (s, &ff) in active.iter().enumerate() {
            let target = targets.map_or(0.0, |t| t[ff as usize]);
            model.add_abs_deviation(kvars[s], target, 1.0);
            warm.push((kwarm[s] - target).abs());
        }
        model.set_warm_start(warm);
        let sol = model.solve();
        if matches!(sol.status, Status::Optimal | Status::Feasible) {
            active
                .iter()
                .enumerate()
                .map(|(s, &ff)| (ff, sol.int_value(kvars[s])))
                .filter(|(_, k)| *k != 0)
                .collect()
        } else {
            // Should not happen (feasibility proven); fall back to witness.
            support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect()
        }
    }

    /// Solves the paper's full big-M ILP over *all* buffered FFs at once —
    /// exponentially slower but a direct transcription of eqs. (8)–(17);
    /// used by tests as a reference oracle.
    pub fn solve_reference_milp(
        &mut self,
        sg: &SequentialGraph,
        ic: &IntegerConstraints,
        space: &BufferSpace,
        push: PushObjective<'_>,
    ) -> SampleResult {
        let n = sg.n_ffs;
        let mut model = Model::new();
        let mut kvars = vec![None; n];
        let mut cterms = Vec::new();
        let mut cvars = vec![None; n];
        for ff in 0..n {
            if !space.has_buffer[ff] {
                continue;
            }
            let (lo, hi) = space.bounds[ff];
            let k = model.add_var(format!("k{ff}"), lo as f64, hi as f64, 0.0, true);
            let c = model.add_binary(format!("c{ff}"), 1.0);
            let big_m = (lo.abs().max(hi.abs()) as f64).max(1.0);
            model.add_indicator(k, c, big_m);
            kvars[ff] = Some(k);
            cvars[ff] = Some(c);
            cterms.push((c, 1.0));
        }
        let add_cons = |model: &mut Model, a: usize, b: usize, bound: i64| -> bool {
            match (kvars[a], kvars[b]) {
                (None, None) => bound >= 0,
                (ka, kb) => {
                    let mut terms = Vec::new();
                    if let Some(k) = ka {
                        terms.push((k, 1.0));
                    }
                    if let Some(k) = kb {
                        terms.push((k, -1.0));
                    }
                    model.add_cons(terms, Op::Le, bound as f64);
                    true
                }
            }
        };
        for (e, edge) in sg.edges.iter().enumerate() {
            let (i, j) = (edge.from as usize, edge.to as usize);
            if !add_cons(&mut model, i, j, ic.setup_bound[e])
                || !add_cons(&mut model, j, i, ic.hold_bound[e])
            {
                return SampleResult {
                    feasible: false,
                    exact: true,
                    tunings: Vec::new(),
                };
            }
        }
        let first = model.solve();
        if first.status != Status::Optimal {
            return SampleResult {
                feasible: false,
                exact: first.status == Status::Infeasible,
                tunings: Vec::new(),
            };
        }
        let nk = first.objective.round() as usize;
        let result_vals = match push {
            PushObjective::None => first,
            _ => {
                // Second stage: budget + |.| objective.
                let mut m2 = model.clone();
                for c in cvars.iter().flatten() {
                    m2.set_objective(*c, 0.0);
                }
                m2.add_cons(
                    cvars.iter().flatten().map(|c| (*c, 1.0)).collect(),
                    Op::Le,
                    nk as f64,
                );
                for ff in 0..n {
                    if let Some(k) = kvars[ff] {
                        let t = match push {
                            PushObjective::ToTargets(t) => t[ff],
                            _ => 0.0,
                        };
                        m2.add_abs_deviation(k, t, 1.0);
                    }
                }
                let second = m2.solve();
                if matches!(second.status, Status::Optimal | Status::Feasible) {
                    second
                } else {
                    first
                }
            }
        };
        let tunings = (0..n)
            .filter_map(|ff| {
                kvars[ff].and_then(|k| {
                    let v = result_vals.int_value(k);
                    (v != 0).then_some((ff as u32, v))
                })
            })
            .collect();
        SampleResult {
            feasible: true,
            exact: true,
            tunings,
        }
    }
}

/// Materialises a region's constraint system from the current chip in
/// **saturation-normalised form**: every bound is clamped at its exact
/// per-constraint cap, and constraints *at* their cap — which can never
/// bind — are elided entirely.
///
/// With every region variable confined to its window and everything
/// outside the region pinned to 0, the left-hand side of
/// `k(a) − k(b) ≤ bound` can never exceed `cap(a,b) = hi'(a) − lo'(b)`,
/// where `hi'`/`lo'` are the endpoint's window bounds inside the region
/// and 0 outside.  A bound at or above that cap therefore constrains
/// nothing — for the feasibility probes, for the branch-and-bound and
/// for the concentration MILP alike — so dropping it leaves the feasible
/// set of every support bit-for-bit unchanged while shrinking every
/// probe the search runs (regions attach each member FF's full edge
/// neighbourhood, and on paper-scale circuits the overwhelming majority
/// of those bounds are vacuous).  Violated bounds are negative and caps
/// never are, so every violated constraint survives exactly.
///
/// Normalisation is applied identically on the cold and incremental
/// paths (it is part of the materialisation, not the cache), and it
/// makes the materialised system — and therefore the outcome-replay and
/// cross-chip memo fingerprints — invariant to slack drift on
/// non-binding constraints.  That is what lets adjacent sweep targets,
/// whose period shift perturbs every non-critical bound by a step or
/// two, still replay each other's search outcomes for chips whose
/// *binding* structure is unchanged.
fn materialize_cons(region: &Region, ic: ConstraintsView<'_>, space: &BufferSpace) -> Vec<RegCons> {
    // Membership is checked against the region's sorted FF list; regions
    // are small, so a sorted probe beats touching an n-sized scratch.
    let window = |ff: u32| -> Option<(i64, i64)> {
        region
            .members
            .binary_search(&ff)
            .ok()
            .map(|_| space.bounds[ff as usize])
    };
    region
        .cons
        .iter()
        .filter_map(|c| {
            let hi_a = window(c.a).map_or(0, |w| w.1);
            let lo_b = window(c.b).map_or(0, |w| w.0);
            let cap = hi_a - lo_b;
            let bound = c.bound_in(ic);
            (bound < cap).then_some(RegCons {
                a: c.a,
                b: c.b,
                bound,
            })
        })
        .collect()
}

/// Reference to one side of an edge constraint, resolved against a chip's
/// bounds on demand.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConsRef {
    a: u32,
    b: u32,
    edge: u32,
    kind: ConstraintKind,
}

impl ConsRef {
    /// The bound this constraint takes in chip `ic`.
    #[inline]
    pub(crate) fn bound_in(&self, ic: ConstraintsView<'_>) -> i64 {
        match self.kind {
            ConstraintKind::Setup => ic.setup_bound[self.edge as usize],
            ConstraintKind::Hold => ic.hold_bound[self.edge as usize],
        }
    }
}

/// One connected solve region: its FFs (pinned BFS order), the attached
/// constraints, and whether it saturated its component.
#[derive(Debug)]
pub(crate) struct Region {
    pub(crate) ffs: Vec<u32>,
    /// `ffs` sorted — the membership probe used by the saturation
    /// normalisation (see [`materialize_cons`]).
    pub(crate) members: Vec<u32>,
    pub(crate) cons: Vec<ConsRef>,
    pub(crate) saturated: bool,
}
