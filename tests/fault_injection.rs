//! Fault-injection matrix: crash-safety and verifier detection under
//! deterministic injected faults (`psbi_fault`).
//!
//! Fault specs are **process-global**, so every test here — including the
//! fault-free reference runs — wraps its body in `psbi_fault::with_spec`,
//! which serialises the tests through a global gate and clears the spec
//! on exit (even on panic).  That is also why these tests live in their
//! own integration binary: unit tests of other crates must never observe
//! an installed spec.
//!
//! The invariant under test is always the same one the determinism suite
//! pins for the healthy path: **the completed journal's bytes are a pure
//! function of the spec** — identical whether a worker panicked and
//! retried, the journal tore mid-write and was repaired on resume, or
//! nothing went wrong at all.

use psbi::core::flow::{BufferInsertionFlow, FlowConfig};
use psbi::fleet::{run_campaign, CampaignSpec, FleetError, FleetOptions, Journal};
use psbi::netlist::bench_suite;
use std::path::PathBuf;

fn quick_spec() -> CampaignSpec {
    CampaignSpec {
        samples: 60,
        yield_samples: 120,
        calibration_samples: 120,
        ..CampaignSpec::example()
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("psbi_fault_matrix_{tag}_{}", std::process::id()))
}

fn opts(workers: usize) -> FleetOptions {
    FleetOptions {
        workers,
        ..FleetOptions::default()
    }
}

/// Runs the fault-free reference campaign (under an *empty* spec so a
/// concurrently queued fault test can never leak into it) and returns
/// its journal bytes.
fn reference_bytes(spec: &CampaignSpec, tag: &str) -> Vec<u8> {
    let path = tmp(tag);
    let _ = std::fs::remove_file(&path);
    let outcome = psbi::fault::with_spec("", || {
        run_campaign(spec, &path, &opts(2)).expect("fault-free campaign")
    });
    assert!(outcome.complete());
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn worker_panic_is_retried_and_byte_identical() {
    let spec = quick_spec();
    let reference = reference_bytes(&spec, "panic_ref");

    // Job 1 panics on its first attempt only; the deterministic retry
    // recomputes it and the journal must not know the difference.
    let path = tmp("panic");
    let _ = std::fs::remove_file(&path);
    let outcome = psbi::fault::with_spec("fleet.job.panic@job=1,times=1", || {
        run_campaign(&spec, &path, &opts(2)).expect("campaign with transient panic")
    });
    assert!(outcome.complete());
    assert!(outcome.records.iter().all(|r| !r.quarantined));
    assert_eq!(std::fs::read(&path).unwrap(), reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn persistent_panic_quarantines_identically_for_any_worker_count() {
    let spec = quick_spec();

    // Job 2 panics on EVERY attempt: the retry budget (default 2, so 3
    // attempts) is exhausted and the job is quarantined.  The journal —
    // quarantined record included — must still be byte-identical between
    // 1 and 4 workers.
    let run = |workers: usize, tag: &str| -> Vec<u8> {
        let path = tmp(tag);
        let _ = std::fs::remove_file(&path);
        let outcome = psbi::fault::with_spec("fleet.job.panic@job=2", || {
            run_campaign(&spec, &path, &opts(workers)).expect("campaign with quarantine")
        });
        assert!(outcome.complete());
        let quarantined: Vec<_> = outcome.records.iter().filter(|r| r.quarantined).collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].job, 2);
        assert_eq!(quarantined[0].fault, "injected fault: fleet.job.panic");
        assert_eq!(quarantined[0].nb, 0);
        let bytes = std::fs::read(&path).unwrap();
        // The quarantined journal replays cleanly (checksums intact).
        let replayed = Journal::replay(&path, &spec).unwrap();
        assert_eq!(replayed, outcome.records);
        let _ = std::fs::remove_file(&path);
        bytes
    };
    assert_eq!(run(1, "quarantine_w1"), run(4, "quarantine_w4"));
}

#[test]
fn torn_journal_write_is_repaired_on_resume() {
    let spec = quick_spec();
    let reference = reference_bytes(&spec, "torn_ref");

    // The append of record 1 tears half-way (as a kill mid-write would)
    // and the invocation dies with an IO error.  `times=1` pins the fault
    // to the first attempt so the resumed run can rewrite the record.
    let path = tmp("torn");
    let _ = std::fs::remove_file(&path);
    let err = psbi::fault::with_spec("journal.write.torn@record=1,times=1", || {
        run_campaign(&spec, &path, &opts(1)).expect_err("torn write must abort the invocation")
    });
    assert!(matches!(err, FleetError::Io(_)), "got {err}");
    let torn = std::fs::read(&path).unwrap();
    assert!(
        torn.len() < reference.len(),
        "the torn journal must stop short of the full run"
    );

    // Resume: the half line is classified as a torn tail (nothing valid
    // follows it), truncated, and the campaign completes bit-exactly.
    let outcome = psbi::fault::with_spec("", || {
        run_campaign(&spec, &path, &opts(4)).expect("resumed campaign")
    });
    assert!(outcome.complete());
    assert_eq!(outcome.resumed_jobs, 1, "only record 0 survives the tear");
    assert_eq!(std::fs::read(&path).unwrap(), reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn workspace_checkout_panic_is_retried() {
    let spec = quick_spec();
    let reference = reference_bytes(&spec, "pool_ref");

    // The first workspace checkout panics (after the pool lock is
    // released — the pool just leaks one workspace).  The per-job retry
    // absorbs it.
    let path = tmp("pool");
    let _ = std::fs::remove_file(&path);
    let outcome = psbi::fault::with_spec("pool.checkout.panic@times=1", || {
        run_campaign(&spec, &path, &opts(1)).expect("campaign with checkout panic")
    });
    assert!(outcome.complete());
    assert!(outcome.records.iter().all(|r| !r.quarantined));
    assert_eq!(std::fs::read(&path).unwrap(), reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sample_batch_corruption_is_retried_and_byte_identical() {
    let spec = quick_spec();
    let reference = reference_bytes(&spec, "sample_ref");

    // Detected corruption of one sampling batch (modelled as a panic in
    // the fill kernel) unwinds the whole job; the per-job retry recomputes
    // every batch from the deterministic stream, so the journal must not
    // know the difference.
    let path = tmp("sample");
    let _ = std::fs::remove_file(&path);
    let outcome = psbi::fault::with_spec("sample.batch.corrupt@times=1", || {
        run_campaign(&spec, &path, &opts(2)).expect("campaign with corrupt batch")
    });
    assert!(outcome.complete());
    assert!(outcome.records.iter().all(|r| !r.quarantined));
    assert_eq!(std::fs::read(&path).unwrap(), reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn constraint_extraction_panic_is_retried_and_byte_identical() {
    let spec = quick_spec();
    let reference = reference_bytes(&spec, "extract_ref");

    // Same contract one layer up: a panic inside batched constraint
    // extraction (`ConstraintBatch::build_from_with`) is absorbed by the
    // job retry and leaves no trace in the canonical bytes.
    let path = tmp("extract");
    let _ = std::fs::remove_file(&path);
    let outcome = psbi::fault::with_spec("timing.extract.panic@times=1", || {
        run_campaign(&spec, &path, &opts(2)).expect("campaign with extraction panic")
    });
    assert!(outcome.complete());
    assert!(outcome.records.iter().all(|r| !r.quarantined));
    assert_eq!(std::fs::read(&path).unwrap(), reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn commit_crash_poisons_nothing_that_resume_needs() {
    let spec = quick_spec();
    let reference = reference_bytes(&spec, "commit_ref");

    // A panic *inside* the commit section (after the lock is taken,
    // before the write) kills the worker thread and poisons the commit
    // mutex.  The invocation reports a worker crash; the journal keeps
    // its valid prefix; resume completes bit-exactly.
    let path = tmp("commit");
    let _ = std::fs::remove_file(&path);
    let err = psbi::fault::with_spec("fleet.commit.before_write@job=1,times=1", || {
        run_campaign(&spec, &path, &opts(1)).expect_err("commit crash must abort")
    });
    assert!(matches!(err, FleetError::Worker(_)), "got {err}");

    let outcome = psbi::fault::with_spec("", || {
        run_campaign(&spec, &path, &opts(2)).expect("resumed campaign")
    });
    assert!(outcome.complete());
    assert_eq!(std::fs::read(&path).unwrap(), reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn memo_corruption_is_detected_by_the_verifier() {
    // Corrupt every cross-chip memo replay: hits return a fabricated
    // "feasible with zero buffers" outcome.  The independent verifier
    // re-checks each claimed-feasible chip against the raw constraint
    // system (no memo, no warm state) and must catch the lie.
    //
    // Memo hits come from *cross-target* sharing (the memo is flow-wide,
    // warmed by earlier sweep targets), so both legs sweep several
    // targets on one flow — exactly how a fleet job group uses it.
    use psbi::core::flow::TargetPeriod;
    let circuit = bench_suite::tiny_demo(2);
    let cfg = FlowConfig {
        samples: 60,
        yield_samples: 120,
        calibration_samples: 120,
        seed: 42,
        incremental: false, // passes must consult the memo, not warm state
        cross_chip: true,
        verify: true,
        ..FlowConfig::default()
    };
    let targets = [0.0, 2.0];

    let (clean, corrupt) = psbi::fault::with_spec("memo.replay.corrupt", || {
        let corrupt_flow = BufferInsertionFlow::builder(&circuit, cfg.clone())
            .build()
            .expect("flow");
        let corrupt: Vec<_> = targets
            .iter()
            .map(|&k| corrupt_flow.run_target(TargetPeriod::SigmaFactor(k)))
            .collect();
        psbi::fault::clear();
        let clean_flow = BufferInsertionFlow::builder(&circuit, cfg.clone())
            .build()
            .expect("flow");
        let clean: Vec<_> = targets
            .iter()
            .map(|&k| clean_flow.run_target(TargetPeriod::SigmaFactor(k)))
            .collect();
        (clean, corrupt)
    });

    let mut clean_hits = 0;
    for (i, r) in clean.iter().enumerate() {
        let report = r.diagnostics.verify.as_ref().expect("verify report");
        assert!(report.passed, "clean target {i} must verify: {report}");
        clean_hits += r.diagnostics.total().cross_chip_hits;
    }
    assert!(
        clean_hits > 0,
        "sweep never exercised the memo — the corruption site was dead"
    );

    assert!(
        corrupt.iter().any(|r| {
            let report = r.diagnostics.verify.as_ref().expect("verify report");
            !report.passed && report.mismatches > 0
        }),
        "verifier failed to detect injected memo corruption"
    );
}

#[test]
fn campaign_verify_failure_surfaces_as_exit_class_verify() {
    // Fleet-level wiring of the same detection: a campaign run with
    // --verify under memo corruption completes (records journaled) and
    // then fails with the Verify error class (exit code 9 in the CLI).
    let spec = quick_spec();
    let path = tmp("verify_err");
    let _ = std::fs::remove_file(&path);
    let err = psbi::fault::with_spec("memo.replay.corrupt", || {
        run_campaign(
            &spec,
            &path,
            &FleetOptions {
                workers: 2,
                incremental: false,
                verify: true,
                ..FleetOptions::default()
            },
        )
        .expect_err("corrupted memo must fail verification")
    });
    assert!(matches!(err, FleetError::Verify(_)), "got {err}");
    assert_eq!(err.code(), 9);
    // Every record was journaled before the error surfaced.
    let replayed = psbi::fault::with_spec("", || Journal::replay(&path, &spec).unwrap());
    assert_eq!(replayed.len(), spec.jobs().len());
    let _ = std::fs::remove_file(&path);
}
