//! Graphviz DOT export for debugging small circuits.

use crate::graph::{Circuit, NodeKind};
use std::fmt::Write as _;

/// Renders the full netlist as a DOT digraph.
///
/// Intended for small circuits; refuses (returns `None`) above
/// `max_nodes` to avoid generating unreadable multi-megabyte graphs.
pub fn netlist_dot(circuit: &Circuit, max_nodes: usize) -> Option<String> {
    if circuit.len() > max_nodes {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", circuit.name);
    let _ = writeln!(out, "  rankdir=LR;");
    for id in circuit.node_ids() {
        let node = circuit.node(id);
        let (shape, label) = match &node.kind {
            NodeKind::Input => ("invtriangle", node.name.clone()),
            NodeKind::Output => ("triangle", node.name.clone()),
            NodeKind::Gate { cell } => ("box", format!("{}\\n{}", node.name, cell)),
            NodeKind::FlipFlop { cell } => ("box3d", format!("{}\\n{}", node.name, cell)),
        };
        let _ = writeln!(out, "  {id} [shape={shape}, label=\"{label}\"];");
    }
    for id in circuit.node_ids() {
        for &src in circuit.fanins(id) {
            let _ = writeln!(out, "  {src} -> {id};");
        }
    }
    out.push_str("}\n");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::{parse_bench, EXAMPLE_BENCH};

    #[test]
    fn renders_example() {
        let c = parse_bench(EXAMPLE_BENCH).unwrap();
        let dot = netlist_dot(&c, 100).expect("small enough");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("F0"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn refuses_large_circuits() {
        let c = crate::bench_suite::small_demo(1);
        assert!(netlist_dot(&c, 10).is_none());
    }
}
