//! Property-based tests for the netlist layer.

use proptest::prelude::*;
use psbi_netlist::bench_format::{parse_bench, to_bench};
use psbi_netlist::generator::GeneratorProfile;
use psbi_netlist::placement::{sequential_adjacency, Placement};
use psbi_netlist::skew::SkewConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generator hits the requested FF and gate counts exactly for any
    /// size, and the circuit is always structurally valid.
    #[test]
    fn generator_counts_are_exact(
        n_ffs in 2usize..120,
        ratio in 1u32..30,
        seed in 0u64..1000,
    ) {
        let n_gates = n_ffs * ratio as usize;
        let p = GeneratorProfile::sized("p", n_ffs, n_gates);
        let c = p.generate(seed);
        prop_assert_eq!(c.num_ffs(), n_ffs);
        prop_assert_eq!(c.num_gates(), n_gates);
        prop_assert!(c.check().is_ok());
        prop_assert!(c.validate_against(&psbi_liberty::Library::industry_like()).is_ok());
    }

    /// Generated circuits survive a .bench round trip with identical
    /// structure counts.
    #[test]
    fn bench_round_trip_structure(n_ffs in 2usize..40, seed in 0u64..100) {
        let p = GeneratorProfile::sized("p", n_ffs, n_ffs * 5);
        let c = p.generate(seed);
        let lib = psbi_liberty::Library::industry_like();
        let text = to_bench(&c, &lib);
        let c2 = parse_bench(&text).expect("round trip parses");
        prop_assert_eq!(c2.num_ffs(), c.num_ffs());
        prop_assert_eq!(c2.num_gates(), c.num_gates());
        prop_assert_eq!(c2.num_inputs(), c.num_inputs());
        prop_assert_eq!(c2.num_outputs(), c.num_outputs());
    }

    /// Placement always assigns unique coordinates and symmetric adjacency.
    #[test]
    fn placement_invariants(n_ffs in 2usize..80, seed in 0u64..50) {
        let c = GeneratorProfile::sized("p", n_ffs, n_ffs * 3).generate(seed);
        let p = Placement::grid(&c, 1.5);
        prop_assert_eq!(p.len(), n_ffs);
        let mut seen = std::collections::HashSet::new();
        for i in 0..p.len() {
            let (x, y) = p.coord(i);
            prop_assert!(seen.insert(((x * 10.0) as i64, (y * 10.0) as i64)));
        }
        let adj = sequential_adjacency(&c);
        for (i, list) in adj.iter().enumerate() {
            for &j in list {
                prop_assert!(adj[j].contains(&i));
            }
        }
    }

    /// Skews are deterministic and their hotspot count tracks the config.
    #[test]
    fn skew_hotspot_count(n_ffs in 20usize..120, seed in 0u64..50) {
        let c = GeneratorProfile::sized("p", n_ffs, n_ffs * 3).generate(seed);
        let cfg = SkewConfig {
            jitter_sigma: 0.0,
            hotspot_fraction: 0.1,
            hotspot_magnitude: 100.0,
        };
        let skews = cfg.assign(&c, seed);
        prop_assert_eq!(skews.clone(), cfg.assign(&c, seed));
        let hot = skews.iter().filter(|s| s.abs() > 50.0).count();
        let expect = ((n_ffs as f64) * 0.1).round() as usize;
        prop_assert_eq!(hot, expect.max(1));
    }
}
