#![warn(missing_docs)]
//! Timing analysis for the PSBI workspace.
//!
//! This crate turns a [`psbi_netlist::Circuit`] plus a
//! [`psbi_liberty::Library`] and a [`psbi_variation::VariationModel`] into
//! the objects the insertion flow operates on:
//!
//! * [`graph::TimingGraph`] — per-gate canonical delays, pin loads and the
//!   combinational topological order;
//! * [`cones::ConeSet`] — for every flip-flop, the combinational fanout
//!   cone (topologically ordered) and the flip-flop sinks it reaches;
//! * [`seq::SequentialGraph`] — the FF→FF timing edges with canonical
//!   **maximum** and **minimum** path delays computed by block-based SSTA
//!   (Clark's `max`/`min`), plus per-FF setup/hold canonicals.  This is the
//!   "merged" representation the paper assumes (its eq. (1)–(2) operate on
//!   `d̄ij`/`d̲ij` directly);
//! * [`sample::SampleTiming`] — one Monte-Carlo chip: concrete delay values
//!   for every sequential edge, drawn either from the canonical edge forms
//!   (fast, `O(edges)` per sample) or by exact gate-level propagation
//!   (reference mode);
//! * [`sample::SampleBatch`] / [`sample::CanonicalBatchSampler`] — the
//!   structure-of-arrays batch engine: flat `samples × width` buffers
//!   reused across passes and a flattened-coefficient draw kernel with
//!   inverse-transform normals.  Chips are seeded by their global sample
//!   index, so batches decompose deterministically — the foundation of the
//!   flow's thread-count-independent parallelism;
//! * [`constraint::ConstraintBatch`] — batched constraint extraction over
//!   a [`sample::SampleBatch`], with chip-invariant per-edge terms hoisted
//!   out of the chip loop;
//! * [`simd`] — runtime-dispatched wide kernels (AVX2 / NEON / portable
//!   lanes) behind the batch engine, bit-identical to the scalar
//!   reference path and forceable via `PSBI_FORCE_SCALAR=1`;
//! * [`constraint::IntegerConstraints`] — the paper's setup/hold
//!   inequalities discretised to buffer steps:
//!   `k_i − k_j ≤ ⌊(T − s_j − d̄ij + t_j − t_i)/δ⌋` and
//!   `k_j − k_i ≤ ⌊(d̲ij − h_j + t_i − t_j)/δ⌋`;
//! * [`feasibility::DiffSolver`] — an SPFA-based difference-constraint
//!   solver with negative-cycle detection that decides whether a chip can
//!   be configured (and produces a witness configuration).  Its
//!   warm-start API revalidates the previous chip's witness in `O(arcs)`
//!   before falling back to a cold solve — the fast path when evaluating
//!   long streams of similar chips.
//!
//! # Example
//!
//! ```
//! use psbi_liberty::Library;
//! use psbi_netlist::bench_suite;
//! use psbi_timing::{graph::TimingGraph, seq::SequentialGraph};
//! use psbi_variation::VariationModel;
//!
//! let circuit = bench_suite::tiny_demo(1);
//! let lib = Library::industry_like();
//! let model = VariationModel::paper_defaults();
//! let tg = TimingGraph::build(&circuit, &lib, &model).expect("valid");
//! let sg = SequentialGraph::extract(&tg);
//! assert!(sg.edges.len() >= circuit.num_ffs());
//! ```

pub mod cones;
pub mod constraint;
pub mod criticality;
pub mod feasibility;
pub mod graph;
pub mod sample;
pub mod seq;
pub mod simd;

pub use constraint::{
    ConstraintBatch, ConstraintKind, ConstraintsView, IntegerConstraints, Violation,
};
pub use feasibility::{DiffSolver, Feasibility};
pub use graph::TimingGraph;
pub use sample::{CanonicalBatchSampler, SampleBatch, SampleTiming, SampleView};
pub use seq::SequentialGraph;
pub use simd::Backend;
