//! The paper's headline experiment in miniature: run the insertion flow on
//! an ISCAS89-sized benchmark at the three target periods of Table I
//! (µT, µT+σT, µT+2σT) and print the Nb/Ab/Y/Yi row.
//!
//! ```text
//! cargo run --release --example yield_improvement
//! ```
//!
//! For the full-scale reproduction use the dedicated harness:
//! `cargo run -p psbi-bench --release --bin table1 -- --all --samples 10000`.

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi::netlist::bench_suite;

fn main() {
    let spec = bench_suite::by_name("s9234").expect("paper benchmark");
    let circuit = spec.generate();
    println!(
        "benchmark {} ({}): ns = {}, ng = {}",
        spec.name,
        spec.origin,
        circuit.num_ffs(),
        circuit.num_gates()
    );
    println!(
        "{:<16} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "target", "Nb", "Ab", "Yo(%)", "Y(%)", "Yi(%)"
    );
    for (label, sigma) in [("muT", 0.0), ("muT+sigma", 1.0), ("muT+2sigma", 2.0)] {
        let cfg = FlowConfig {
            samples: 800,
            yield_samples: 3_000,
            calibration_samples: 1_500,
            target: TargetPeriod::SigmaFactor(sigma),
            ..FlowConfig::default()
        };
        let r = BufferInsertionFlow::builder(&circuit, cfg)
            .build()
            .expect("valid")
            .run();
        println!(
            "{label:<16} {:>6} {:>6.2} {:>8.2} {:>8.2} {:>8.2}",
            r.nb, r.ab, r.yield_baseline, r.yield_with_buffers, r.improvement
        );
    }
    println!();
    println!("expected shape (paper, 10000 samples): large Yi at muT (~27 points),");
    println!("moderate at +1 sigma (~12), small at +2 sigma (~1.5); Nb stays a small");
    println!("fraction of the flip-flops and Ab stays well below the 20-step maximum.");
}
