//! Post-silicon configuration of a manufactured chip.
//!
//! The paper leaves "post-silicon testing and configuration of delay
//! buffers" as future work; with the difference-constraint view it comes
//! for free: the shortest-path potentials that witness feasibility *are* a
//! valid buffer configuration.  [`configure_chip`] additionally centres the
//! configuration inside its feasible box to maximise margin.

use crate::yield_eval::Deployment;
use psbi_timing::feasibility::{Arc, DiffSolver, Feasibility};
use psbi_timing::{IntegerConstraints, SequentialGraph};
use serde::{Deserialize, Serialize};

/// The per-buffer settings for one chip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipConfiguration {
    /// One setting (in steps, within the buffer's window) per physical
    /// buffer, in deployment order.
    pub settings: Vec<i64>,
}

/// Computes buffer settings for one measured chip, or `None` when the chip
/// cannot be rescued.
///
/// The witness from the feasibility check pins every buffer at its
/// *largest* feasible value (shortest-path distances); a second pass with
/// all arcs reversed pins the smallest values, and the returned setting is
/// the midpoint — a balanced configuration with slack on both sides.
pub fn configure_chip(
    sg: &SequentialGraph,
    ic: &IntegerConstraints,
    deployment: &Deployment,
) -> Option<ChipConfiguration> {
    let mut solver = DiffSolver::new();
    let mut arcs: Vec<Arc> = Vec::new();
    if !deployment.build_arcs(sg, ic, &mut arcs) {
        return None;
    }
    let n = deployment.num_buffers();
    let hi = match solver.solve_bounded(n, &arcs, &deployment.bounds) {
        Feasibility::Feasible(w) => w,
        Feasibility::Infeasible => return None,
    };
    // Lower envelope: negate the variable order by flipping every arc and
    // bound, solve, and negate back.
    let flipped: Vec<Arc> = arcs
        .iter()
        .map(|a| Arc::new(a.to, a.from, a.weight))
        .collect();
    let flipped_bounds: Vec<(i64, i64)> = deployment
        .bounds
        .iter()
        .map(|(lo, hi)| (-hi, -lo))
        .collect();
    let lo = match solver.solve_bounded(n, &flipped, &flipped_bounds) {
        Feasibility::Feasible(w) => w.into_iter().map(|v| -v).collect::<Vec<_>>(),
        Feasibility::Infeasible => return None,
    };
    // Midpoint, verified (midpoints of two feasible points need not be
    // feasible for *integer* rounding, so fall back to the hi witness).
    let mid: Vec<i64> = hi
        .iter()
        .zip(&lo)
        .map(|(h, l)| (h + l).div_euclid(2))
        .collect();
    let candidate = if verify(sg, ic, deployment, &mid) {
        mid
    } else {
        hi
    };
    Some(ChipConfiguration {
        settings: candidate,
    })
}

/// Checks that `settings` satisfies every constraint and window of the
/// deployment for this chip.
pub fn verify(
    sg: &SequentialGraph,
    ic: &IntegerConstraints,
    deployment: &Deployment,
    settings: &[i64],
) -> bool {
    if settings.len() != deployment.num_buffers() {
        return false;
    }
    for (g, &(lo, hi)) in deployment.bounds.iter().enumerate() {
        if settings[g] < lo || settings[g] > hi {
            return false;
        }
    }
    let value = |ff: u32| -> i64 {
        let v = deployment.var_of_ff[ff as usize];
        if v == u32::MAX {
            0
        } else {
            settings[v as usize]
        }
    };
    for (e, edge) in sg.edges.iter().enumerate() {
        let (ki, kj) = (value(edge.from), value(edge.to));
        if ki - kj > ic.setup_bound[e] || kj - ki > ic.hold_bound[e] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{Group, Grouping};
    use psbi_timing::seq::SeqEdge;
    use psbi_variation::CanonicalForm;

    fn graph(n: usize, edges: &[(u32, u32)]) -> SequentialGraph {
        SequentialGraph::from_parts(
            n,
            edges
                .iter()
                .map(|(a, b)| SeqEdge {
                    from: *a,
                    to: *b,
                    max_delay: CanonicalForm::constant(1.0),
                    min_delay: CanonicalForm::constant(1.0),
                })
                .collect(),
            vec![CanonicalForm::constant(1.0); n],
            vec![CanonicalForm::constant(1.0); n],
        )
    }

    fn deployment_on(ffs_windows: &[(usize, i64, i64)], n_ffs: usize) -> Deployment {
        let grouping = Grouping {
            groups: ffs_windows
                .iter()
                .map(|(ff, lo, hi)| Group {
                    members: vec![*ff],
                    lo: *lo,
                    hi: *hi,
                    usage: 1,
                })
                .collect(),
            dropped: vec![],
            correlated_pairs: 0,
            merged_pairs: 0,
        };
        Deployment::from_grouping(n_ffs, &grouping)
    }

    fn ic(setup: &[i64], hold: &[i64]) -> IntegerConstraints {
        IntegerConstraints {
            setup_bound: setup.to_vec(),
            hold_bound: hold.to_vec(),
        }
    }

    #[test]
    fn configuration_is_verified_feasible() {
        let sg = graph(2, &[(0, 1)]);
        let dep = deployment_on(&[(1, -2, 8)], 2);
        let c = ic(&[-3], &[10]);
        let conf = configure_chip(&sg, &c, &dep).expect("rescuable");
        assert!(verify(&sg, &c, &dep, &conf.settings));
        assert!(
            conf.settings[0] >= 3,
            "needs at least +3, got {:?}",
            conf.settings
        );
    }

    #[test]
    fn midpoint_maximises_margin() {
        // Feasible k1 range is [3, 8]; midpoint should be 5 (integer floor
        // of 5.5).
        let sg = graph(2, &[(0, 1)]);
        let dep = deployment_on(&[(1, 0, 8)], 2);
        let c = ic(&[-3], &[100]);
        let conf = configure_chip(&sg, &c, &dep).expect("rescuable");
        assert!((4..=7).contains(&conf.settings[0]), "{:?}", conf.settings);
    }

    #[test]
    fn dead_chip_returns_none() {
        let sg = graph(2, &[(0, 1)]);
        let dep = deployment_on(&[(1, 0, 2)], 2);
        let c = ic(&[-5], &[100]); // needs +5, window caps at +2
        assert!(configure_chip(&sg, &c, &dep).is_none());
    }

    #[test]
    fn verify_rejects_out_of_window_and_violations() {
        let sg = graph(2, &[(0, 1)]);
        let dep = deployment_on(&[(1, 0, 4)], 2);
        let c = ic(&[-3], &[100]);
        assert!(!verify(&sg, &c, &dep, &[9])); // out of window
        assert!(!verify(&sg, &c, &dep, &[2])); // violates setup (needs ≥ 3)
        assert!(verify(&sg, &c, &dep, &[3]));
        assert!(!verify(&sg, &c, &dep, &[3, 0])); // wrong length
    }

    #[test]
    fn untouched_chip_gets_a_configuration_too() {
        let sg = graph(2, &[(0, 1)]);
        let dep = deployment_on(&[(1, 0, 4)], 2);
        let c = ic(&[5], &[5]); // already fine at zero
        let conf = configure_chip(&sg, &c, &dep).expect("configurable");
        assert!(verify(&sg, &c, &dep, &conf.settings));
    }
}
