//! Integration tests for the future-work extensions: speed binning and
//! buffer-area estimation.

use psbi::core::flow::{BinningRequest, BufferInsertionFlow, FlowConfig, TargetPeriod};
use psbi::netlist::bench_suite;

fn flow_result(
    circuit: &psbi::netlist::Circuit,
) -> (BufferInsertionFlow<'_>, psbi::core::flow::InsertionResult) {
    let cfg = FlowConfig {
        samples: 250,
        yield_samples: 800,
        calibration_samples: 500,
        seed: 19,
        threads: 2,
        target: TargetPeriod::SigmaFactor(0.0),
        ..FlowConfig::default()
    };
    let flow = BufferInsertionFlow::builder(circuit, cfg)
        .build()
        .expect("valid circuit");
    let r = flow.run();
    (flow, r)
}

#[test]
fn speed_bins_are_consistent_with_yield() {
    let circuit = bench_suite::small_demo(14);
    let (flow, r) = flow_result(&circuit);
    let bins = [r.period, r.mu_t + 2.0 * r.sigma_t, r.mu_t + 4.0 * r.sigma_t];
    let report = flow.speed_bins(BinningRequest::new(&r.deployment, &bins, r.step));

    // Everyone is classified.
    assert_eq!(
        report.baseline.iter().sum::<usize>() + report.dead_baseline,
        report.samples
    );
    assert_eq!(
        report.buffered.iter().sum::<usize>() + report.dead_buffered,
        report.samples
    );
    // The first bin equals the yield evaluation at the target period, on
    // the same chip stream.
    let y_bin0 = 100.0 * report.buffered[0] as f64 / report.samples as f64;
    // Same stream and same period, but the flow's yield run used
    // `yield_samples` chips while binning uses the same count — they must
    // agree exactly.
    assert!(
        (y_bin0 - r.yield_with_buffers).abs() < 1e-9,
        "bin0 {y_bin0} vs yield {}",
        r.yield_with_buffers
    );
    // Buffers shift the distribution toward faster bins cumulatively.
    let mut cb = 0;
    let mut cf = 0;
    for i in 0..bins.len() {
        cb += report.baseline[i];
        cf += report.buffered[i];
        assert!(cf >= cb, "bin {i}");
    }
    // Mean selling period must not get worse with buffers.
    assert!(report.mean_period(true, r.sigma_t) <= report.mean_period(false, r.sigma_t) + 1e-9);
}

#[test]
fn area_report_tracks_groups() {
    let circuit = bench_suite::small_demo(15);
    let (_, r) = flow_result(&circuit);
    let area = r.area();
    assert_eq!(area.buffers, r.nb);
    let expect_elements: u64 = r.groups.iter().map(|g| g.range() as u64).sum();
    assert_eq!(area.delay_elements, expect_elements);
    if r.nb > 0 {
        // Concentration keeps the deployed area below the naive maximum.
        assert!(area.delay_elements <= area.max_range_elements);
        // 5 bits suffice for a 20-step buffer, so bits <= 5 * buffers.
        assert!(area.config_bits <= 5 * r.nb as u64);
    }
}

#[test]
fn report_rendering_round_trip() {
    let circuit = bench_suite::tiny_demo(16);
    let (_, r) = flow_result(&circuit);
    let md = psbi::core::report::markdown_table(&[("tiny", "muT", &r)]);
    assert!(md.contains("tiny"));
    let csv = psbi::core::report::csv_table(&[("tiny", "muT", &r)]);
    assert!(csv.lines().count() == 2);
    let s = psbi::core::report::summary(&r);
    assert!(s.contains("yield"));
}
