//! P3: the per-sample buffer-minimisation solver — the flow's inner loop.
//! Measures solving one violated Monte-Carlo chip (region extraction,
//! support branch-and-bound, concentration MILP).

use criterion::{criterion_group, criterion_main, Criterion};
use psbi_core::solve::{BufferSpace, PushObjective, SampleSolver, SolverOptions};
use psbi_liberty::Library;
use psbi_netlist::bench_suite;
use psbi_timing::graph::TimingGraph;
use psbi_timing::sample::{chip_rng, sample_canonical, SampleTiming};
use psbi_timing::seq::SequentialGraph;
use psbi_timing::{constraint, IntegerConstraints};
use psbi_variation::VariationModel;

fn bench_sample_solve(c: &mut Criterion) {
    let circuit = bench_suite::small_demo(2);
    let lib = Library::industry_like();
    let model = VariationModel::paper_defaults();
    let tg = TimingGraph::build(&circuit, &lib, &model).unwrap();
    let sg = SequentialGraph::extract(&tg);
    let skews = vec![0.0; sg.n_ffs];

    // Calibrate a period around the median so roughly half the samples
    // violate (the expensive case).
    let mut periods = Vec::new();
    let mut st = SampleTiming::for_graph(&sg);
    for k in 0..200 {
        let (globals, mut rng) = chip_rng(5, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        periods.push(constraint::min_period(&sg, &st, &skews).period);
    }
    let mu = psbi_variation::mean(&periods);
    let step = mu / 160.0;
    let space = BufferSpace::floating(sg.n_ffs, 20);

    // Pre-draw a violated sample.
    let mut ic = IntegerConstraints::for_graph(&sg);
    let mut violated_idx = 0;
    for k in 0..200 {
        let (globals, mut rng) = chip_rng(5, k);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        ic.build(&sg, &st, &skews, mu, step);
        if !ic.feasible_at_zero() {
            violated_idx = k;
            break;
        }
    }
    let (globals, mut rng) = chip_rng(5, violated_idx);
    sample_canonical(&sg, &globals, &mut rng, &mut st);
    ic.build(&sg, &st, &skews, mu, step);
    assert!(!ic.feasible_at_zero(), "expected a violated sample");

    let opts = SolverOptions::default();
    c.bench_function("solve_min_count_violated", |b| {
        let mut solver = SampleSolver::new();
        b.iter(|| {
            solver
                .solve(&sg, &ic, &space, PushObjective::None, &opts)
                .count()
        })
    });
    c.bench_function("solve_push_to_zero_violated", |b| {
        let mut solver = SampleSolver::new();
        b.iter(|| {
            solver
                .solve(&sg, &ic, &space, PushObjective::ToZero, &opts)
                .count()
        })
    });

    // The common fast path: a feasible sample (no violations).
    let mut ic_ok = IntegerConstraints::for_graph(&sg);
    ic_ok.build(&sg, &st, &skews, mu * 1.6, step);
    assert!(ic_ok.feasible_at_zero());
    c.bench_function("solve_feasible_sample", |b| {
        let mut solver = SampleSolver::new();
        b.iter(|| {
            solver
                .solve(&sg, &ic_ok, &space, PushObjective::ToZero, &opts)
                .count()
        })
    });
}

criterion_group!(benches, bench_sample_solve);
criterion_main!(benches);
