//! Named benchmark descriptors matching the paper's Table I circuits.
//!
//! Each spec carries the flip-flop count `ns` and gate count `ng` the paper
//! reports, plus a deterministic default seed.  Generated circuits are the
//! documented substitutes for the unavailable mapped netlists (`DESIGN.md`
//! §2); `ns`/`ng` match the paper exactly.

use crate::generator::GeneratorProfile;
use crate::graph::Circuit;
use serde::{Deserialize, Serialize};

/// One benchmark of the paper's suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name as printed in Table I.
    pub name: &'static str,
    /// Flip-flop count (`ns`).
    pub n_ffs: usize,
    /// Gate count (`ng`).
    pub n_gates: usize,
    /// Origin of the circuit in the paper ("ISCAS89" or "TAU 2013").
    pub origin: &'static str,
    /// Default generation seed.
    pub default_seed: u64,
}

impl BenchmarkSpec {
    /// The generator profile for this benchmark.
    pub fn profile(&self) -> GeneratorProfile {
        GeneratorProfile::sized(self.name, self.n_ffs, self.n_gates)
    }

    /// Generates the circuit with the default seed.
    pub fn generate(&self) -> Circuit {
        self.profile().generate(self.default_seed)
    }

    /// Generates the circuit with an explicit seed.
    pub fn generate_seeded(&self, seed: u64) -> Circuit {
        self.profile().generate(seed)
    }
}

/// The paper's eight benchmarks with their exact Table I sizes.
pub fn paper_suite() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "s9234",
            n_ffs: 211,
            n_gates: 5597,
            origin: "ISCAS89",
            default_seed: 0x9234,
        },
        BenchmarkSpec {
            name: "s13207",
            n_ffs: 638,
            n_gates: 7951,
            origin: "ISCAS89",
            default_seed: 0x13207,
        },
        BenchmarkSpec {
            name: "s15850",
            n_ffs: 534,
            n_gates: 9772,
            origin: "ISCAS89",
            default_seed: 0x15850,
        },
        BenchmarkSpec {
            name: "s38584",
            n_ffs: 1426,
            n_gates: 19253,
            origin: "ISCAS89",
            default_seed: 0x38584,
        },
        BenchmarkSpec {
            name: "mem_ctrl",
            n_ffs: 1065,
            n_gates: 10327,
            origin: "TAU 2013",
            default_seed: 0xE301,
        },
        BenchmarkSpec {
            name: "usb_funct",
            n_ffs: 1746,
            n_gates: 14381,
            origin: "TAU 2013",
            default_seed: 0xE302,
        },
        BenchmarkSpec {
            name: "ac97_ctrl",
            n_ffs: 2199,
            n_gates: 9208,
            origin: "TAU 2013",
            default_seed: 0xE303,
        },
        BenchmarkSpec {
            name: "pci_bridge32",
            n_ffs: 3321,
            n_gates: 12494,
            origin: "TAU 2013",
            default_seed: 0xE304,
        },
    ]
}

/// Looks a paper benchmark up by name.
///
/// ```
/// let spec = psbi_netlist::bench_suite::by_name("s9234").unwrap();
/// assert_eq!(spec.n_ffs, 211);
/// ```
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    paper_suite().into_iter().find(|s| s.name == name)
}

/// The names of the paper suite, in Table-I order.
pub fn suite_names() -> Vec<&'static str> {
    paper_suite().into_iter().map(|s| s.name).collect()
}

/// A serialisable, self-contained circuit descriptor — what campaign specs
/// and job journals store instead of a materialised [`Circuit`].
///
/// The canonical text form round-trips through
/// [`CircuitRef::parse`] / [`CircuitRef::id`]:
///
/// | form | meaning |
/// |---|---|
/// | `s9234` | a paper-suite benchmark, default seed |
/// | `s9234@7` | a paper-suite benchmark, explicit generation seed |
/// | `tiny_demo:3` | the 24-FF demo circuit, seed 3 |
/// | `small_demo:3` | the 80-FF demo circuit, seed 3 |
/// | `medium_demo:3` | the 250-FF demo circuit, seed 3 |
/// | `sized:name:ffs:gates:seed` | an arbitrary generated circuit |
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CircuitRef {
    /// A paper-suite benchmark (`None` = the spec's default seed).
    Paper {
        /// Benchmark name as in [`paper_suite`].
        name: String,
        /// Generation seed override.
        seed: Option<u64>,
    },
    /// A named demo class ([`tiny_demo`] / [`small_demo`] / [`medium_demo`]).
    Demo {
        /// `tiny_demo`, `small_demo` or `medium_demo`.
        class: String,
        /// Generation seed.
        seed: u64,
    },
    /// An arbitrary generated circuit of an explicit size.
    Sized {
        /// Circuit name.
        name: String,
        /// Flip-flop count.
        n_ffs: usize,
        /// Gate count.
        n_gates: usize,
        /// Generation seed.
        seed: u64,
    },
}

impl CircuitRef {
    /// Parses the canonical text form (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names or malformed
    /// numeric fields.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("sized:") {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 4 {
                return Err(format!("`sized:` takes name:ffs:gates:seed, got `{s}`"));
            }
            let n_ffs = parts[1]
                .parse()
                .map_err(|_| format!("bad FF count in `{s}`"))?;
            let n_gates = parts[2]
                .parse()
                .map_err(|_| format!("bad gate count in `{s}`"))?;
            let seed = parts[3].parse().map_err(|_| format!("bad seed in `{s}`"))?;
            if n_ffs == 0 || n_gates == 0 {
                return Err(format!("sized circuit `{s}` must have FFs and gates"));
            }
            return Ok(CircuitRef::Sized {
                name: parts[0].to_string(),
                n_ffs,
                n_gates,
                seed,
            });
        }
        if let Some((class, seed)) = s.split_once(':') {
            if !matches!(class, "tiny_demo" | "small_demo" | "medium_demo") {
                return Err(format!("unknown demo class `{class}` in `{s}`"));
            }
            let seed = seed.parse().map_err(|_| format!("bad seed in `{s}`"))?;
            return Ok(CircuitRef::Demo {
                class: class.to_string(),
                seed,
            });
        }
        let (name, seed) = match s.split_once('@') {
            Some((n, seed)) => (
                n,
                Some(seed.parse().map_err(|_| format!("bad seed in `{s}`"))?),
            ),
            None => (s, None),
        };
        if by_name(name).is_none() {
            return Err(format!(
                "unknown circuit `{name}` (paper suite: {})",
                suite_names().join(", ")
            ));
        }
        Ok(CircuitRef::Paper {
            name: name.to_string(),
            seed,
        })
    }

    /// The canonical text form ([`CircuitRef::parse`] inverts it).
    pub fn id(&self) -> String {
        match self {
            CircuitRef::Paper { name, seed: None } => name.clone(),
            CircuitRef::Paper {
                name,
                seed: Some(s),
            } => format!("{name}@{s}"),
            CircuitRef::Demo { class, seed } => format!("{class}:{seed}"),
            CircuitRef::Sized {
                name,
                n_ffs,
                n_gates,
                seed,
            } => format!("sized:{name}:{n_ffs}:{n_gates}:{seed}"),
        }
    }

    /// The (FF count, gate count) the generated circuit will have, or
    /// `None` when the name no longer resolves (possible when a
    /// descriptor was deserialised rather than parsed).
    pub fn size(&self) -> Option<(usize, usize)> {
        match self {
            CircuitRef::Paper { name, .. } => by_name(name).map(|spec| (spec.n_ffs, spec.n_gates)),
            CircuitRef::Demo { class, .. } => match class.as_str() {
                "tiny_demo" => Some(TINY_DEMO_SIZE),
                "small_demo" => Some(SMALL_DEMO_SIZE),
                "medium_demo" => Some(MEDIUM_DEMO_SIZE),
                _ => None,
            },
            CircuitRef::Sized { n_ffs, n_gates, .. } => Some((*n_ffs, *n_gates)),
        }
    }

    /// Generates the circuit this descriptor names.
    ///
    /// # Errors
    ///
    /// Fails when a paper or demo name no longer resolves (possible when a
    /// descriptor was deserialised rather than parsed).
    pub fn materialize(&self) -> Result<Circuit, String> {
        match self {
            CircuitRef::Paper { name, seed } => {
                let spec = by_name(name).ok_or_else(|| format!("unknown circuit `{name}`"))?;
                Ok(match seed {
                    Some(s) => spec.generate_seeded(*s),
                    None => spec.generate(),
                })
            }
            CircuitRef::Demo { class, seed } => match class.as_str() {
                "tiny_demo" => Ok(tiny_demo(*seed)),
                "small_demo" => Ok(small_demo(*seed)),
                "medium_demo" => Ok(medium_demo(*seed)),
                other => Err(format!("unknown demo class `{other}`")),
            },
            CircuitRef::Sized {
                name,
                n_ffs,
                n_gates,
                seed,
            } => Ok(GeneratorProfile::sized(name, *n_ffs, *n_gates).generate(*seed)),
        }
    }
}

/// (FF count, gate count) of [`tiny_demo`].
pub const TINY_DEMO_SIZE: (usize, usize) = (24, 220);
/// (FF count, gate count) of [`small_demo`].
pub const SMALL_DEMO_SIZE: (usize, usize) = (80, 900);
/// (FF count, gate count) of [`medium_demo`].
pub const MEDIUM_DEMO_SIZE: (usize, usize) = (250, 3500);

/// A miniature circuit (24 FFs, 220 gates) for tests, docs and examples.
pub fn tiny_demo(seed: u64) -> Circuit {
    GeneratorProfile::sized("tiny_demo", TINY_DEMO_SIZE.0, TINY_DEMO_SIZE.1).generate(seed)
}

/// A small circuit (80 FFs, 900 gates) for fast integration tests.
pub fn small_demo(seed: u64) -> Circuit {
    GeneratorProfile::sized("small_demo", SMALL_DEMO_SIZE.0, SMALL_DEMO_SIZE.1).generate(seed)
}

/// A medium circuit (250 FFs, 3500 gates) — roughly s9234-class.
pub fn medium_demo(seed: u64) -> Circuit {
    GeneratorProfile::sized("medium_demo", MEDIUM_DEMO_SIZE.0, MEDIUM_DEMO_SIZE.1).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_sizes() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 8);
        let by = |n: &str| by_name(n).unwrap();
        assert_eq!((by("s9234").n_ffs, by("s9234").n_gates), (211, 5597));
        assert_eq!((by("s13207").n_ffs, by("s13207").n_gates), (638, 7951));
        assert_eq!((by("s15850").n_ffs, by("s15850").n_gates), (534, 9772));
        assert_eq!((by("s38584").n_ffs, by("s38584").n_gates), (1426, 19253));
        assert_eq!(
            (by("mem_ctrl").n_ffs, by("mem_ctrl").n_gates),
            (1065, 10327)
        );
        assert_eq!(
            (by("usb_funct").n_ffs, by("usb_funct").n_gates),
            (1746, 14381)
        );
        assert_eq!(
            (by("ac97_ctrl").n_ffs, by("ac97_ctrl").n_gates),
            (2199, 9208)
        );
        assert_eq!(
            (by("pci_bridge32").n_ffs, by("pci_bridge32").n_gates),
            (3321, 12494)
        );
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn generated_benchmark_has_exact_size() {
        let spec = by_name("s9234").unwrap();
        let c = spec.generate();
        assert_eq!(c.num_ffs(), spec.n_ffs);
        assert_eq!(c.num_gates(), spec.n_gates);
        assert!(c.check().is_ok());
    }

    #[test]
    fn circuit_ref_round_trips_and_materializes() {
        for id in [
            "s9234",
            "s9234@7",
            "tiny_demo:3",
            "small_demo:5",
            "medium_demo:1",
            "sized:custom:16:120:9",
        ] {
            let r = CircuitRef::parse(id).unwrap();
            assert_eq!(r.id(), id);
            assert_eq!(CircuitRef::parse(&r.id()).unwrap(), r);
        }
        let tiny = CircuitRef::parse("tiny_demo:3").unwrap();
        let c = tiny.materialize().unwrap();
        assert_eq!(c.num_ffs(), 24);
        assert_eq!(tiny.size(), Some(TINY_DEMO_SIZE));
        // Same descriptor → the same generated size and name.
        let again = tiny.materialize().unwrap();
        assert_eq!(c.num_gates(), again.num_gates());
        assert_eq!(c.name, again.name);
        // Paper refs honour explicit seeds.
        let a = CircuitRef::parse("s9234").unwrap().size();
        assert_eq!(a, Some((211, 5597)));
        // Unresolvable descriptors report no size instead of panicking.
        let ghost = CircuitRef::Paper {
            name: "removed_bench".into(),
            seed: None,
        };
        assert_eq!(ghost.size(), None);
        assert!(ghost.materialize().is_err());
    }

    #[test]
    fn circuit_ref_rejects_malformed() {
        for bad in [
            "nope",
            "tiny_demo:x",
            "huge_demo:1",
            "sized:just_name",
            "sized:z:0:10:1",
            "s9234@x",
        ] {
            assert!(CircuitRef::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn suite_names_in_table_order() {
        let names = suite_names();
        assert_eq!(names.len(), 8);
        assert_eq!(names[0], "s9234");
        assert_eq!(names[7], "pci_bridge32");
    }

    #[test]
    fn demos_are_valid() {
        for c in [tiny_demo(1), small_demo(1)] {
            assert!(c.check().is_ok());
            assert!(c
                .validate_against(&psbi_liberty::Library::industry_like())
                .is_ok());
        }
    }
}
