//! Branch and bound over the LP relaxation.
//!
//! Depth-first search with most-fractional branching.  Each node carries
//! its own bound vectors (the per-region problems are small, so cloning
//! bounds is cheaper than maintaining a reversible trail).

use crate::model::{Model, Solution, Status};
use crate::simplex::LpOutcome;

const INT_TOL: f64 = 1e-6;
/// Incumbent must improve by at least this much to be accepted.
const OBJ_TOL: f64 = 1e-9;

struct BbNode {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// LP bound inherited from the parent (for pruning before solving).
    parent_bound: f64,
}

/// Solves `model` to proven optimality (or node limit).
pub fn solve_branch_and_bound(model: &Model) -> Solution {
    let root_lo: Vec<f64> = model.vars.iter().map(|v| v.lo).collect();
    let root_hi: Vec<f64> = model.vars.iter().map(|v| v.hi).collect();

    let mut best_obj = f64::INFINITY;
    let mut best_x: Option<Vec<f64>> = None;
    // A verified warm-start point becomes the incumbent before the first
    // node: the search then only replaces it with strictly better points,
    // so a warm start can change *which* optimal point is returned (ties
    // keep the incumbent) but never the optimal objective.
    if let Some((x, obj)) = model.verified_warm_start() {
        best_obj = obj;
        best_x = Some(x);
    }
    let mut nodes = 0usize;
    let mut stack = vec![BbNode {
        lo: root_lo,
        hi: root_hi,
        parent_bound: f64::NEG_INFINITY,
    }];
    let mut limit_hit = false;

    while let Some(node) = stack.pop() {
        if nodes >= model.node_limit {
            limit_hit = true;
            break;
        }
        nodes += 1;
        if node.parent_bound >= best_obj - OBJ_TOL {
            continue; // dominated before solving
        }
        let (lp, constant) = model.to_dense_lp(&node.lo, &node.hi);
        let (x, bound) = match lp.solve() {
            LpOutcome::Optimal { x, objective } => {
                let xs: Vec<f64> = x.iter().enumerate().map(|(i, y)| y + node.lo[i]).collect();
                (xs, objective + constant)
            }
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // Finite bounds make this impossible unless the model is
                // malformed; report it rather than looping.
                return Solution {
                    status: Status::Unbounded,
                    values: vec![],
                    objective: f64::NEG_INFINITY,
                    nodes,
                };
            }
        };
        if bound >= best_obj - OBJ_TOL {
            continue;
        }
        // Find the most fractional integer variable.
        let mut branch_var: Option<usize> = None;
        let mut best_frac = INT_TOL;
        for (i, v) in model.vars.iter().enumerate() {
            if v.integer {
                let f = (x[i] - x[i].round()).abs();
                if f > best_frac {
                    best_frac = f;
                    branch_var = Some(i);
                }
            }
        }
        match branch_var {
            None => {
                // Integral (within tolerance): snap and accept.
                let mut snapped = x.clone();
                for (i, v) in model.vars.iter().enumerate() {
                    if v.integer {
                        snapped[i] = snapped[i].round();
                    }
                }
                if bound < best_obj - OBJ_TOL {
                    best_obj = bound;
                    best_x = Some(snapped);
                }
            }
            Some(i) => {
                let xi = x[i];
                // Down branch: x_i <= floor(xi).
                let lo_d = node.lo.clone();
                let mut hi_d = node.hi.clone();
                hi_d[i] = xi.floor();
                // Up branch: x_i >= ceil(xi).
                let mut lo_u = node.lo.clone();
                let hi_u = node.hi.clone();
                lo_u[i] = xi.ceil();
                // Explore the branch closer to the LP value first (pushed
                // last → popped first).
                let frac = xi - xi.floor();
                let down = BbNode {
                    lo: lo_d,
                    hi: hi_d,
                    parent_bound: bound,
                };
                let up = BbNode {
                    lo: lo_u,
                    hi: hi_u,
                    parent_bound: bound,
                };
                if down.hi[i] >= down.lo[i] - OBJ_TOL && up.hi[i] >= up.lo[i] - OBJ_TOL {
                    if frac < 0.5 {
                        stack.push(up);
                        stack.push(down);
                    } else {
                        stack.push(down);
                        stack.push(up);
                    }
                } else if down.hi[i] >= down.lo[i] - OBJ_TOL {
                    stack.push(down);
                } else if up.hi[i] >= up.lo[i] - OBJ_TOL {
                    stack.push(up);
                }
            }
        }
    }

    match best_x {
        Some(values) => Solution {
            status: if limit_hit {
                Status::Feasible
            } else {
                Status::Optimal
            },
            values,
            objective: best_obj,
            nodes,
        },
        None => Solution {
            status: if limit_hit {
                Status::Unknown
            } else {
                Status::Infeasible
            },
            values: vec![],
            objective: f64::INFINITY,
            nodes,
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{Model, Op, Status};

    #[test]
    fn knapsack_small() {
        // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) → 16.
        let mut m = Model::new();
        let a = m.add_binary("a", -10.0);
        let b = m.add_binary("b", -6.0);
        let c = m.add_binary("c", -4.0);
        m.add_cons(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Op::Le, 2.0);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 16.0).abs() < 1e-6);
        assert_eq!(s.int_value(a), 1);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 0);
    }

    #[test]
    fn warm_start_is_verified_and_preserves_the_optimum() {
        // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) → 16 at (1,1,0).
        let build = || {
            let mut m = Model::new();
            let a = m.add_binary("a", -10.0);
            let b = m.add_binary("b", -6.0);
            let c = m.add_binary("c", -4.0);
            m.add_cons(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Op::Le, 2.0);
            m
        };
        // A feasible but sub-optimal warm start: the search must still
        // find the true optimum.
        let mut m = build();
        m.set_warm_start(vec![1.0, 0.0, 1.0]); // objective -14
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 16.0).abs() < 1e-6);
        // The optimal warm start is kept (ties keep the incumbent).
        let mut m = build();
        m.set_warm_start(vec![1.0, 1.0, 0.0]);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 16.0).abs() < 1e-6);
        assert_eq!(s.values, vec![1.0, 1.0, 0.0]);
        // An infeasible warm start is discarded, not trusted.
        let mut m = build();
        m.set_warm_start(vec![1.0, 1.0, 1.0]); // violates the knapsack
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 16.0).abs() < 1e-6);
        // A fractional value on an integer variable is rejected too.
        let mut m = build();
        m.set_warm_start(vec![0.5, 0.0, 0.0]);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 16.0).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_matters() {
        // min y s.t. 2y >= 3, y integer → y = 2 (LP gives 1.5).
        let mut m = Model::new();
        let y = m.add_var("y", 0.0, 10.0, 1.0, true);
        m.add_cons(vec![(y, 2.0)], Op::Ge, 3.0);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(y), 2);
        let lp = m.solve_lp();
        assert!((lp.value(y) - 1.5).abs() < 1e-7);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 <= x <= 0.6, x integer → infeasible.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 0.0, true);
        m.add_cons(vec![(x, 1.0)], Op::Ge, 0.4);
        m.add_cons(vec![(x, 1.0)], Op::Le, 0.6);
        let s = m.solve();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn negative_integer_domain() {
        // min |x + 2| with x integer in [-5, 5] and x <= -4 → x = -4.
        let mut m = Model::new();
        let x = m.add_var("x", -5.0, 5.0, 0.0, true);
        m.add_cons(vec![(x, 1.0)], Op::Le, -4.0);
        m.add_abs_deviation(x, -2.0, 1.0);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(x), -4);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min x + y, x integer, x + 2y >= 4.5, y in [0, 1] → x = 3, y = .75
        // vs x = 4, y = 0.25... compare: obj(3, 0.75) = 3.75; obj(4,0.25)=4.25;
        // x=2,y=1.25 infeasible (y<=1). So optimum 3.75.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0, 1.0, true);
        let y = m.add_var("y", 0.0, 1.0, 1.0, false);
        m.add_cons(vec![(x, 1.0), (y, 2.0)], Op::Ge, 4.5);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 3.75).abs() < 1e-6, "obj={}", s.objective);
        assert_eq!(s.int_value(x), 3);
    }

    #[test]
    fn equality_with_integers() {
        // 3x + 5y = 19, x,y >= 0 integers, min x+y → (3, 2).
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 20.0, 1.0, true);
        let y = m.add_var("y", 0.0, 20.0, 1.0, true);
        m.add_cons(vec![(x, 3.0), (y, 5.0)], Op::Eq, 19.0);
        let s = m.solve();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!((s.int_value(x), s.int_value(y)), (3, 2));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// One constraint `Σ a_i x_i <= b` of the brute-force model.
        type BruteCons = (Vec<i64>, i64);

        /// Brute-force reference for tiny integer programs.
        fn brute(n: usize, lo: i64, hi: i64, cost: &[i64], cons: &[BruteCons]) -> Option<i64> {
            #[allow(clippy::too_many_arguments)]
            fn rec(
                i: usize,
                x: &mut Vec<i64>,
                n: usize,
                lo: i64,
                hi: i64,
                cost: &[i64],
                cons: &[BruteCons],
                best: &mut Option<i64>,
            ) {
                if i == n {
                    for (a, b) in cons {
                        let s: i64 = a.iter().zip(x.iter()).map(|(ai, xi)| ai * xi).sum();
                        if s > *b {
                            return;
                        }
                    }
                    let obj: i64 = cost.iter().zip(x.iter()).map(|(c, xi)| c * xi).sum();
                    if best.is_none() || obj < best.unwrap() {
                        *best = Some(obj);
                    }
                    return;
                }
                for v in lo..=hi {
                    x.push(v);
                    rec(i + 1, x, n, lo, hi, cost, cons, best);
                    x.pop();
                }
            }
            let mut best = None;
            rec(0, &mut Vec::new(), n, lo, hi, cost, cons, &mut best);
            best
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn milp_matches_brute_force(
                cost in proptest::collection::vec(-4i64..=4, 3),
                cons in proptest::collection::vec(
                    (proptest::collection::vec(-3i64..=3, 3), -6i64..=8), 0..4),
            ) {
                let mut m = Model::new();
                let vars: Vec<_> = (0..3)
                    .map(|i| m.add_var(format!("x{i}"), -2.0, 2.0, cost[i] as f64, true))
                    .collect();
                for (a, b) in &cons {
                    let terms: Vec<_> = vars
                        .iter()
                        .zip(a.iter())
                        .map(|(v, c)| (*v, *c as f64))
                        .collect();
                    m.add_cons(terms, Op::Le, *b as f64);
                }
                let got = m.solve();
                let want = brute(3, -2, 2, &cost, &cons);
                match want {
                    None => prop_assert_eq!(got.status, Status::Infeasible),
                    Some(obj) => {
                        prop_assert_eq!(got.status, Status::Optimal);
                        prop_assert!((got.objective - obj as f64).abs() < 1e-5,
                            "got {} want {}", got.objective, obj);
                        // The returned point must itself be feasible.
                        for (a, b) in &cons {
                            let s: f64 = vars.iter().zip(a.iter())
                                .map(|(v, c)| got.value(*v) * *c as f64).sum();
                            prop_assert!(s <= *b as f64 + 1e-6);
                        }
                    }
                }
            }
        }
    }
}
