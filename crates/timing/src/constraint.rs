//! Discretised setup/hold constraints and unbuffered-period analysis.
//!
//! With tuning buffers, the paper's constraints (1)–(2) for a sequential
//! edge `i → j` with fixed clock-tree skews `t` and tuning delays `x = k·δ`
//! (in integer steps `k`) are difference constraints:
//!
//! ```text
//! setup: k_i − k_j ≤ ⌊(T − s_j − d̄ij + t_j − t_i)/δ⌋   (= setup_bound)
//! hold:  k_j − k_i ≤ ⌊(d̲ij − h_j + t_i − t_j)/δ⌋        (= hold_bound)
//! ```
//!
//! Flooring is conservative: any integer solution of the floored system
//! satisfies the original real constraints.

use crate::sample::{SampleBatch, SampleTiming, SampleView};
use crate::seq::SequentialGraph;
use crate::simd;
use serde::{Deserialize, Serialize};

/// Which side of an edge constraint is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// Max-delay / setup constraint.
    Setup,
    /// Min-delay / hold constraint.
    Hold,
}

/// Integer difference-constraint bounds for one sample.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegerConstraints {
    /// Per edge: `k_from − k_to ≤ setup_bound[e]`.
    pub setup_bound: Vec<i64>,
    /// Per edge: `k_to − k_from ≤ hold_bound[e]`.
    pub hold_bound: Vec<i64>,
}

impl IntegerConstraints {
    /// Pre-sizes for a graph.
    pub fn for_graph(sg: &SequentialGraph) -> Self {
        Self {
            setup_bound: vec![0; sg.edges.len()],
            hold_bound: vec![0; sg.edges.len()],
        }
    }

    /// Fills the bounds for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn build(
        &mut self,
        sg: &SequentialGraph,
        st: &SampleTiming,
        skews: &[f64],
        period: f64,
        step: f64,
    ) {
        self.build_view(sg, st.view(), skews, period, step);
    }

    /// Fills the bounds from a borrowed chip view (a [`SampleTiming`] or a
    /// [`SampleBatch`] row).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn build_view(
        &mut self,
        sg: &SequentialGraph,
        st: SampleView<'_>,
        skews: &[f64],
        period: f64,
        step: f64,
    ) {
        assert!(step > 0.0, "buffer step must be positive");
        self.setup_bound.clear();
        self.setup_bound.resize(sg.edges.len(), 0);
        self.hold_bound.clear();
        self.hold_bound.resize(sg.edges.len(), 0);
        fill_bounds_row(
            sg,
            st,
            skews,
            period,
            step,
            &mut self.setup_bound,
            &mut self.hold_bound,
        );
    }

    /// Borrowed view of the bounds.
    #[inline]
    pub fn as_view(&self) -> ConstraintsView<'_> {
        ConstraintsView {
            setup_bound: &self.setup_bound,
            hold_bound: &self.hold_bound,
        }
    }

    /// Edges whose constraints are violated with all tunings at zero.
    pub fn violations_at_zero(&self) -> impl Iterator<Item = (usize, ConstraintKind)> + '_ {
        let setups = self
            .setup_bound
            .iter()
            .enumerate()
            .filter(|(_, b)| **b < 0)
            .map(|(e, _)| (e, ConstraintKind::Setup));
        let holds = self
            .hold_bound
            .iter()
            .enumerate()
            .filter(|(_, b)| **b < 0)
            .map(|(e, _)| (e, ConstraintKind::Hold));
        setups.chain(holds)
    }

    /// True when the zero assignment satisfies every constraint.
    pub fn feasible_at_zero(&self) -> bool {
        self.as_view().feasible_at_zero()
    }
}

/// Borrowed integer constraint bounds of one chip — either an
/// [`IntegerConstraints`] or one row of a [`ConstraintBatch`].
#[derive(Debug, Clone, Copy)]
pub struct ConstraintsView<'a> {
    /// Per edge: `k_from − k_to ≤ setup_bound[e]`.
    pub setup_bound: &'a [i64],
    /// Per edge: `k_to − k_from ≤ hold_bound[e]`.
    pub hold_bound: &'a [i64],
}

/// One constraint violated with all tunings at zero, normalised to the
/// difference form `k[a] − k[b] ≤ bound` (with `bound < 0`).
///
/// The ordered sequence of a chip's violations is its **violated-constraint
/// fingerprint**: two chips (or the same chip across flow passes) with
/// equal fingerprints seed identical solver region decompositions, which
/// is what lets `psbi_core::solve` carry a region decomposition from one
/// pass to the next after an exact value comparison — no hashing, so a
/// fingerprint match can never replay a wrong decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Left-hand FF of the difference constraint.
    pub a: u32,
    /// Right-hand FF of the difference constraint.
    pub b: u32,
    /// Edge index in the sequential graph.
    pub edge: u32,
    /// Setup or hold side of the edge.
    pub kind: ConstraintKind,
    /// The (negative) floored bound.
    pub bound: i64,
}

impl ConstraintsView<'_> {
    /// True when the zero assignment satisfies every constraint.
    #[inline]
    pub fn feasible_at_zero(&self) -> bool {
        self.setup_bound.iter().all(|b| *b >= 0) && self.hold_bound.iter().all(|b| *b >= 0)
    }

    /// Collects this chip's violated constraints into `out` (cleared
    /// first) in the canonical edge-major, setup-before-hold order — the
    /// chip's violated-constraint fingerprint (see [`Violation`]).
    pub fn collect_violations(&self, sg: &SequentialGraph, out: &mut Vec<Violation>) {
        out.clear();
        for (e, edge) in sg.edges.iter().enumerate() {
            if self.setup_bound[e] < 0 {
                out.push(Violation {
                    a: edge.from,
                    b: edge.to,
                    edge: e as u32,
                    kind: ConstraintKind::Setup,
                    bound: self.setup_bound[e],
                });
            }
            if self.hold_bound[e] < 0 {
                out.push(Violation {
                    a: edge.to,
                    b: edge.from,
                    edge: e as u32,
                    kind: ConstraintKind::Hold,
                    bound: self.hold_bound[e],
                });
            }
        }
    }
}

/// Shared row kernel: writes one chip's floored bounds into slices.
///
/// The slack terms are grouped exactly as in [`ConstraintBatch::build_from`]
/// (skew/period base first, then the chip-dependent terms) so the scalar
/// and batched paths produce bit-identical floored bounds for the same
/// chip — floating-point association matters at step boundaries, and the
/// flow's replay APIs promise exact agreement with the batched passes.
#[inline]
fn fill_bounds_row(
    sg: &SequentialGraph,
    st: SampleView<'_>,
    skews: &[f64],
    period: f64,
    step: f64,
    setup_bound: &mut [i64],
    hold_bound: &mut [i64],
) {
    let inv_step = 1.0 / step;
    for (e, edge) in sg.edges.iter().enumerate() {
        let (i, j) = (edge.from as usize, edge.to as usize);
        let setup_base = period + skews[j] - skews[i];
        let hold_base = skews[i] - skews[j];
        let setup_slack = setup_base - st.setup[j] - st.edge_max[e];
        let hold_slack = st.edge_min[e] - st.hold[j] + hold_base;
        setup_bound[e] = (setup_slack * inv_step).floor() as i64;
        hold_bound[e] = (hold_slack * inv_step).floor() as i64;
    }
}

/// Structure-of-arrays integer bounds for a batch of chips.
///
/// Row-major `len × edges` buffers, reused across passes via
/// [`ConstraintBatch::build_from`] (no per-chip allocation).  The
/// bound-extraction inner loop runs on the process-wide kernel backend
/// ([`simd::active`]); all backends produce bit-identical bounds.
#[derive(Debug, Clone, Default)]
pub struct ConstraintBatch {
    n_edges: usize,
    len: usize,
    setup_bound: Vec<i64>,
    hold_bound: Vec<i64>,
    /// Per-edge chip-invariant terms, precomputed once per batch:
    /// `period + skews[to] − skews[from]` and `skews[from] − skews[to]`.
    setup_base: Vec<f64>,
    hold_base: Vec<f64>,
    /// Capture-FF index per edge (flat copy of `SeqEdge::to`).
    to_idx: Vec<u32>,
    /// Wide-path scratch: the capture FF's setup/hold values gathered
    /// per edge, so the bound kernel streams edge-indexed lanes only.
    gather_setup: Vec<f64>,
    gather_hold: Vec<f64>,
}

impl ConstraintBatch {
    /// An empty batch; fill with [`ConstraintBatch::build_from`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of chips currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no chips are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extracts the integer bounds of every chip in `batch`, reusing this
    /// batch's buffers, on the process-wide kernel backend
    /// ([`simd::active`]).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn build_from(
        &mut self,
        sg: &SequentialGraph,
        batch: &SampleBatch,
        skews: &[f64],
        period: f64,
        step: f64,
    ) {
        self.build_from_with(simd::active(), sg, batch, skews, period, step);
    }

    /// [`build_from`](ConstraintBatch::build_from) on an explicit kernel
    /// backend.  Every backend produces bit-identical bounds; this entry
    /// point exists for parity tests and scalar-vs-SIMD benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive, or if `backend` is not
    /// available on this host.
    pub fn build_from_with(
        &mut self,
        backend: simd::Backend,
        sg: &SequentialGraph,
        batch: &SampleBatch,
        skews: &[f64],
        period: f64,
        step: f64,
    ) {
        assert!(step > 0.0, "buffer step must be positive");
        assert!(
            backend.is_available(),
            "kernel backend {} not available on this host",
            backend.name()
        );
        let _span = psbi_obs::Span::enter_with(
            "timing.extract",
            &[
                ("chips", batch.len() as u64),
                ("first", batch.first_index()),
            ],
        );
        psbi_obs::metrics::counter_add("timing.extract.batches", 1);
        if psbi_fault::failpoint!("timing.extract.panic", "first" = batch.first_index()) {
            // Models a constraint-extraction crash (e.g. a malformed bound
            // tripping a downstream assert): the pass dies mid-chunk and
            // the fleet's per-job retry recomputes it deterministically.
            panic!("injected fault: timing.extract.panic");
        }
        self.n_edges = sg.edges.len();
        self.len = batch.len();
        self.setup_bound.clear();
        self.setup_bound.resize(self.len * self.n_edges, 0);
        self.hold_bound.clear();
        self.hold_bound.resize(self.len * self.n_edges, 0);
        // Chip-invariant per-edge terms, hoisted once per batch: the skew/
        // period parts of both bounds and the capture-FF index.  The
        // per-chip loop then streams the flat SoA rows without touching
        // the fat `SeqEdge` structs at all.
        self.setup_base.clear();
        self.hold_base.clear();
        self.to_idx.clear();
        for edge in &sg.edges {
            let (i, j) = (edge.from as usize, edge.to as usize);
            self.setup_base.push(period + skews[j] - skews[i]);
            self.hold_base.push(skews[i] - skews[j]);
            self.to_idx.push(edge.to);
        }
        let inv_step = 1.0 / step;
        // The portable backend has no real wide bounds kernel (its
        // `extract_bounds` arm is the scalar lane loop), so the gather
        // staging below would be pure overhead — it takes the fused loop
        // alongside Scalar.  Only hardware-vector backends pay for the
        // gather and recoup it in the slack/floor sweep.
        if matches!(backend, simd::Backend::Scalar | simd::Backend::Portable) {
            for row in 0..self.len {
                let e0 = row * self.n_edges;
                let v = batch.view(row);
                for e in 0..self.n_edges {
                    let j = self.to_idx[e] as usize;
                    let setup_slack = self.setup_base[e] - v.setup[j] - v.edge_max[e];
                    let hold_slack = v.edge_min[e] - v.hold[j] + self.hold_base[e];
                    self.setup_bound[e0 + e] = (setup_slack * inv_step).floor() as i64;
                    self.hold_bound[e0 + e] = (hold_slack * inv_step).floor() as i64;
                }
            }
        } else {
            // Wide path: gather the capture-FF setup/hold values into
            // edge-indexed lanes (scalar; data-dependent indices), then
            // run the vectorised slack/floor kernel over the row.
            self.gather_setup.clear();
            self.gather_setup.resize(self.n_edges, 0.0);
            self.gather_hold.clear();
            self.gather_hold.resize(self.n_edges, 0.0);
            for row in 0..self.len {
                let e0 = row * self.n_edges;
                let v = batch.view(row);
                for e in 0..self.n_edges {
                    let j = self.to_idx[e] as usize;
                    self.gather_setup[e] = v.setup[j];
                    self.gather_hold[e] = v.hold[j];
                }
                let lanes = simd::BoundLanes {
                    setup_base: &self.setup_base,
                    setup_ff: &self.gather_setup,
                    edge_max: v.edge_max,
                    edge_min: v.edge_min,
                    hold_ff: &self.gather_hold,
                    hold_base: &self.hold_base,
                };
                simd::extract_bounds(
                    backend,
                    &lanes,
                    inv_step,
                    &mut self.setup_bound[e0..e0 + self.n_edges],
                    &mut self.hold_bound[e0..e0 + self.n_edges],
                );
            }
        }
    }

    /// Borrowed view of chip `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len()`.
    #[inline]
    pub fn view(&self, row: usize) -> ConstraintsView<'_> {
        assert!(row < self.len, "constraint row out of range");
        let e0 = row * self.n_edges;
        ConstraintsView {
            setup_bound: &self.setup_bound[e0..e0 + self.n_edges],
            hold_bound: &self.hold_bound[e0..e0 + self.n_edges],
        }
    }
}

/// Minimum-period analysis of one unbuffered sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinPeriod {
    /// Smallest clock period satisfying every setup constraint at `x = 0`.
    pub period: f64,
    /// Whether every hold constraint holds at `x = 0` (independent of `T`).
    pub hold_ok: bool,
    /// Edge achieving the critical setup constraint.
    pub critical_edge: usize,
}

/// Computes the unbuffered minimum period of a sample.
///
/// The critical edge maximises `d̄ij + s_j + t_i − t_j`.
///
/// # Panics
///
/// Panics if the graph has no edges.
pub fn min_period(sg: &SequentialGraph, st: &SampleTiming, skews: &[f64]) -> MinPeriod {
    min_period_view(sg, st.view(), skews)
}

/// Computes the unbuffered minimum period from a borrowed chip view (a
/// [`SampleTiming`] or a [`SampleBatch`] row).
///
/// # Panics
///
/// Panics if the graph has no edges.
pub fn min_period_view(sg: &SequentialGraph, st: SampleView<'_>, skews: &[f64]) -> MinPeriod {
    assert!(!sg.edges.is_empty(), "sequential graph has no edges");
    let mut best = f64::NEG_INFINITY;
    let mut arg = 0usize;
    let mut hold_ok = true;
    for (e, edge) in sg.edges.iter().enumerate() {
        let (i, j) = (edge.from as usize, edge.to as usize);
        let need = st.edge_max[e] + st.setup[j] + skews[i] - skews[j];
        if need > best {
            best = need;
            arg = e;
        }
        if st.edge_min[e] - st.hold[j] + skews[i] - skews[j] < 0.0 {
            hold_ok = false;
        }
    }
    MinPeriod {
        period: best.max(0.0),
        hold_ok,
        critical_edge: arg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingGraph;
    use crate::sample::{chip_rng, sample_canonical, SampleTiming};
    use psbi_liberty::Library;
    use psbi_netlist::bench_suite;
    use psbi_variation::VariationModel;

    fn fixture() -> (SequentialGraph, SampleTiming, Vec<f64>) {
        let c = bench_suite::tiny_demo(9);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let mut st = SampleTiming::for_graph(&sg);
        let (globals, mut rng) = chip_rng(3, 0);
        sample_canonical(&sg, &globals, &mut rng, &mut st);
        let skews = vec![0.0; sg.n_ffs];
        (sg, st, skews)
    }

    #[test]
    fn min_period_is_feasibility_threshold() {
        let (sg, st, skews) = fixture();
        let mp = min_period(&sg, &st, &skews);
        assert!(mp.period > 0.0);
        let step = mp.period / 160.0;
        let mut ic = IntegerConstraints::for_graph(&sg);
        // Slightly above the minimum period: setup feasible at zero.
        ic.build(&sg, &st, &skews, mp.period * 1.0001, step);
        assert!(ic.setup_bound.iter().all(|b| *b >= 0));
        // Slightly below: the critical edge must be violated.
        ic.build(&sg, &st, &skews, mp.period - 2.0 * step, step);
        assert!(ic.setup_bound[mp.critical_edge] < 0);
    }

    #[test]
    fn hold_bounds_do_not_depend_on_period() {
        let (sg, st, skews) = fixture();
        let mut a = IntegerConstraints::for_graph(&sg);
        let mut b = IntegerConstraints::for_graph(&sg);
        a.build(&sg, &st, &skews, 500.0, 2.0);
        b.build(&sg, &st, &skews, 900.0, 2.0);
        assert_eq!(a.hold_bound, b.hold_bound);
        assert_ne!(a.setup_bound, b.setup_bound);
    }

    #[test]
    fn flooring_is_conservative() {
        let (sg, st, skews) = fixture();
        let mp = min_period(&sg, &st, &skews);
        let step = mp.period / 160.0;
        let mut ic = IntegerConstraints::for_graph(&sg);
        let t = mp.period * 1.05;
        ic.build(&sg, &st, &skews, t, step);
        for (e, edge) in sg.edges.iter().enumerate() {
            let (i, j) = (edge.from as usize, edge.to as usize);
            // Integer bound times step never exceeds the real slack.
            let real = t - st.setup[j] - st.edge_max[e] + skews[j] - skews[i];
            assert!(ic.setup_bound[e] as f64 * step <= real + 1e-9);
        }
    }

    #[test]
    fn skews_shift_constraints() {
        let (sg, st, mut skews) = fixture();
        let mp = min_period(&sg, &st, &skews);
        // Delay the launching FF of the critical edge: period must grow.
        let crit = &sg.edges[mp.critical_edge];
        skews[crit.from as usize] += 50.0;
        let mp2 = min_period(&sg, &st, &skews);
        assert!(mp2.period >= mp.period + 49.0);
    }

    #[test]
    fn batch_rows_match_scalar_build() {
        // ConstraintBatch::build_from must produce, per row, exactly what
        // IntegerConstraints::build_view produces for that row's view.
        use crate::sample::{CanonicalBatchSampler, SampleBatch};
        let c = bench_suite::tiny_demo(11);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let skews = vec![0.0; sg.n_ffs];
        let sampler = CanonicalBatchSampler::new(&sg);
        let mut batch = SampleBatch::new();
        batch.reset(&sg, 12);
        sampler.fill(4, 0, &mut batch);
        let period = 600.0;
        let step = 3.0;
        let mut cb = ConstraintBatch::new();
        cb.build_from(&sg, &batch, &skews, period, step);
        assert_eq!(cb.len(), 12);
        let mut ic = IntegerConstraints::for_graph(&sg);
        for row in 0..12 {
            ic.build_view(&sg, batch.view(row), &skews, period, step);
            let v = cb.view(row);
            assert_eq!(v.setup_bound, &ic.setup_bound[..]);
            assert_eq!(v.hold_bound, &ic.hold_bound[..]);
            assert_eq!(v.feasible_at_zero(), ic.feasible_at_zero());
        }
    }

    #[test]
    fn batch_build_handles_nonzero_skews() {
        // The hoisted per-edge skew terms in build_from must reproduce the
        // scalar per-row formula for arbitrary skews.
        use crate::sample::{CanonicalBatchSampler, SampleBatch};
        let c = bench_suite::tiny_demo(12);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let skews: Vec<f64> = (0..sg.n_ffs)
            .map(|i| ((i % 5) as f64) * 3.5 - 7.0)
            .collect();
        let sampler = CanonicalBatchSampler::new(&sg);
        let (period, step) = (550.0, 2.5);
        let mut batch = SampleBatch::new();
        batch.reset(&sg, 20);
        sampler.fill(77, 100, &mut batch);
        let mut cb = ConstraintBatch::new();
        cb.build_from(&sg, &batch, &skews, period, step);
        let mut ic = IntegerConstraints::for_graph(&sg);
        for row in 0..20 {
            ic.build_view(&sg, batch.view(row), &skews, period, step);
            let v = cb.view(row);
            assert_eq!(v.setup_bound, &ic.setup_bound[..], "row {row}");
            assert_eq!(v.hold_bound, &ic.hold_bound[..], "row {row}");
        }
    }

    #[test]
    fn build_from_backends_bit_identical() {
        // Bound extraction must agree across every kernel backend — the
        // floored integer bounds are the values the solver consumes, so
        // any lane divergence would break run reproducibility.  Batch
        // lengths and edge counts exercise the remainder loops.
        use crate::sample::{CanonicalBatchSampler, SampleBatch};
        let c = bench_suite::tiny_demo(14);
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let skews: Vec<f64> = (0..sg.n_ffs)
            .map(|i| ((i % 7) as f64) * 1.5 - 4.0)
            .collect();
        let sampler = CanonicalBatchSampler::new(&sg);
        for len in [1usize, 3, 5, 9] {
            let mut batch = SampleBatch::new();
            batch.reset(&sg, len);
            sampler.fill(91, 17, &mut batch);
            let (period, step) = (620.0, 2.25);
            let mut reference = ConstraintBatch::new();
            reference.build_from_with(
                crate::simd::Backend::Scalar,
                &sg,
                &batch,
                &skews,
                period,
                step,
            );
            for backend in crate::simd::Backend::available() {
                let mut cb = ConstraintBatch::new();
                cb.build_from_with(backend, &sg, &batch, &skews, period, step);
                for row in 0..len {
                    let a = reference.view(row);
                    let b = cb.view(row);
                    assert_eq!(
                        a.setup_bound,
                        b.setup_bound,
                        "backend {} len {len} row {row}",
                        backend.name()
                    );
                    assert_eq!(a.hold_bound, b.hold_bound);
                }
            }
        }
    }

    #[test]
    fn violations_at_zero_enumerates_both_kinds() {
        let (sg, st, skews) = fixture();
        let mut ic = IntegerConstraints::for_graph(&sg);
        let mp = min_period(&sg, &st, &skews);
        ic.build(&sg, &st, &skews, mp.period * 0.9, mp.period / 160.0);
        let setup_viols = ic
            .violations_at_zero()
            .filter(|(_, k)| *k == ConstraintKind::Setup)
            .count();
        assert!(setup_viols > 0);
        assert!(!ic.feasible_at_zero());
        ic.build(&sg, &st, &skews, mp.period * 1.01, mp.period / 160.0);
        if mp.hold_ok {
            assert!(ic.feasible_at_zero());
        }
    }
}
