//! The campaign dispatcher behind `psbi-fleet serve`.
//!
//! One long-running process owns the journals.  Submitters hand it
//! campaigns ([`crate::proto::Msg::Submit`]); workers connect, request
//! work and receive **leases** — contiguous-by-circuit slices of the job
//! grid with a deadline.  Completed [`crate::JobRecord`]s come back over
//! the wire (checksummed end to end), pass through the same reorder
//! buffer the single-process runner uses, and are appended to the same
//! append-only v2 journal **in job-index order** — which is the whole
//! determinism argument: every record is a pure function of (spec, job
//! index), and the journal only ever sees them in grid order, so its
//! bytes cannot depend on worker count, join/leave order or kill pattern.
//!
//! # Failure model
//!
//! * **Worker dies / hangs / partitions** — its lease deadline passes
//!   without a heartbeat (or its connection drops, which expires its
//!   leases immediately) and the jobs return to the pending set for
//!   re-dispatch.  If the "dead" worker later returns a result anyway,
//!   first-committed-wins: a job that is already committed or parked is
//!   acknowledged and the duplicate discarded — byte-identical either
//!   way, because both copies are the same pure function of the spec.
//! * **Result torn in transit** — the record line re-checksums on
//!   receipt; a failure drops the connection and the lease machinery
//!   takes over.  Nothing half-parsed ever reaches the journal.
//! * **Dispatcher killed (`kill -9`)** — the journal's torn-tail repair
//!   recovers committed work on restart, and the per-campaign **lease
//!   log** (`<journal>.leases`, advisory, append-only) records
//!   grant/expire/done events so a restarted dispatcher can report how
//!   many leases the crash orphaned.  Orphaned leases need no repair:
//!   their jobs were never committed, so they are simply pending again.
//!   Campaign ids restart with the dispatcher, so every result must
//!   carry its spec fingerprint (checked against the campaign's, plus a
//!   grid-identity check of the record itself) — a worker surviving the
//!   restart with cached results for an *old* campaign that shared the
//!   id can never graft foreign bytes into the new campaign's journal.
//! * **No worker ever connects** — after `inline_grace_ms` the
//!   dispatcher degrades to inline execution in-process (same
//!   [`crate::runner::execute_batch`] core the workers use), so a
//!   campaign always completes.
//!
//! Campaigns multiplex over one shared [`WorkspacePool`]; leases are
//! granted round-robin across active campaigns so no submitter starves.

use crate::error::FleetError;
use crate::journal::{JobRecord, Journal};
use crate::proto::{read_msg, write_msg, Msg};
use crate::runner::execute_batch;
use crate::spec::{CampaignSpec, JobSpec};
use psbi_core::flow::WorkspacePool;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

pub(crate) fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Default dispatcher address (`PSBI_DISPATCH_ADDR` overrides).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// Knobs for one `psbi-fleet serve` process.
///
/// Like [`crate::FleetOptions`], these are *runtime* knobs: none of them
/// may change a single canonical byte.  Lease sizes, deadlines and
/// heartbeat cadence only shuffle which worker computes which pure
/// function — the reorder buffer erases the difference.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`host:port`; port 0 picks a free port — pair with
    /// `addr_file` so scripts can find it).
    pub addr: String,
    /// Concurrently *active* campaigns; further submissions queue.
    pub max_campaigns: usize,
    /// Jobs per lease; 0 = circuit-aligned (all pending jobs of one
    /// circuit), which maximises worker-side calibration reuse.
    pub lease_jobs: usize,
    /// Lease duration in ms: a lease not renewed (heartbeat or result)
    /// within this window expires and its jobs are re-dispatched.
    pub lease_ms: u64,
    /// Heartbeat interval advertised to workers.
    pub heartbeat_ms: u64,
    /// How long the dispatcher waits for a first worker before degrading
    /// to inline in-process execution.
    pub inline_grace_ms: u64,
    /// Exit after the first submitted campaign completes (broadcasting
    /// `shutdown` to connected workers).
    pub once: bool,
    /// Per-campaign progress lines on stderr, driven by the metrics
    /// registry (a path-less registry is armed if none is).
    pub progress: bool,
    /// Write the bound address (one line) here once listening — how
    /// scripts discover a port-0 dispatcher.
    pub addr_file: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let lease_ms = env_u64("PSBI_DISPATCH_LEASE_MS", 10_000);
        Self {
            addr: std::env::var("PSBI_DISPATCH_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.into()),
            max_campaigns: 1,
            lease_jobs: 0,
            lease_ms,
            heartbeat_ms: env_u64("PSBI_DISPATCH_HEARTBEAT_MS", (lease_ms / 4).max(1)),
            inline_grace_ms: env_u64("PSBI_DISPATCH_INLINE_GRACE_MS", 1_000),
            once: false,
            progress: false,
            addr_file: None,
        }
    }
}

/// Advisory append-only log of lease lifecycle events, next to the
/// journal (`<journal>.leases`).  The journal alone is the source of
/// truth for *results*; this log exists so a dispatcher restarted after
/// `kill -9` can tell (and report) which leases the crash orphaned, and
/// so post-mortems can reconstruct the grant/expire/redispatch history.
/// Parsing is tolerant: a torn tail line is simply ignored.
struct LeaseLog {
    file: File,
}

impl LeaseLog {
    /// Opens (creating if absent) and scans the log: returns the handle,
    /// the number of orphaned leases (granted, never done/expired — the
    /// signature of a dispatcher crash) and the highest lease id seen.
    fn open(path: &Path) -> Result<(Self, usize, u64), FleetError> {
        let mut open_leases = HashSet::new();
        let mut max_lease = 0u64;
        if let Ok(bytes) = std::fs::read(path) {
            for line in String::from_utf8_lossy(&bytes).lines() {
                let Ok(v) = crate::json::Json::parse(line) else {
                    continue; // torn tail from a crash mid-append
                };
                let lease = v.get("lease").and_then(crate::json::Json::as_u64);
                match (v.get("ev").and_then(crate::json::Json::as_str), lease) {
                    (Some("grant"), Some(l)) => {
                        open_leases.insert(l);
                        max_lease = max_lease.max(l);
                    }
                    (Some("done" | "expire"), Some(l)) => {
                        open_leases.remove(&l);
                        max_lease = max_lease.max(l);
                    }
                    _ => {}
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((Self { file }, open_leases.len(), max_lease))
    }

    /// Best-effort append (the log is advisory — a full disk must not
    /// fail the campaign whose journal still writes fine).
    fn ev(&mut self, line: &str) {
        let _ = self
            .file
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.file.flush());
    }

    fn grant(&mut self, lease: u64, conn: u64, jobs: &BTreeSet<usize>) {
        let jobs: Vec<String> = jobs.iter().map(usize::to_string).collect();
        self.ev(&format!(
            "{{\"ev\":\"grant\",\"lease\":{lease},\"conn\":{conn},\"jobs\":[{}]}}",
            jobs.join(",")
        ));
    }

    fn done(&mut self, lease: u64) {
        self.ev(&format!("{{\"ev\":\"done\",\"lease\":{lease}}}"));
    }

    fn expire(&mut self, lease: u64, reason: &str) {
        self.ev(&format!(
            "{{\"ev\":\"expire\",\"lease\":{lease},\"reason\":\"{}\"}}",
            crate::json::escape(reason)
        ));
    }
}

/// One outstanding lease.  `jobs` holds only the *unreturned* jobs — a
/// returned job leaves the set immediately, so expiry never re-dispatches
/// work that already reached the reorder buffer.
struct Lease {
    jobs: BTreeSet<usize>,
    deadline: Instant,
    /// Owning connection (0 = the dispatcher's inline executor).
    conn: u64,
}

/// One active campaign: the dispatcher-side mirror of the runner's
/// `CommitState`, plus the lease bookkeeping.
struct Campaign {
    spec: CampaignSpec,
    /// Canonical spec text embedded in every lease (identical bytes on
    /// both sides ⇒ identical fingerprint and grid).
    spec_text: String,
    /// [`CampaignSpec::fingerprint`] of `spec_text` — every incoming
    /// result must present it, so a record computed for a different
    /// campaign that happens to share this campaign's id (ids restart
    /// on dispatcher restart) can never reach the journal.
    fingerprint: String,
    jobs: Vec<JobSpec>,
    journal: Journal,
    journal_path: PathBuf,
    lease_log: LeaseLog,
    total: usize,
    /// Next job index to commit (resumed prefix already behind it).
    next: usize,
    resumed: usize,
    /// Completed jobs waiting for their predecessors.
    parked: BTreeMap<usize, JobRecord>,
    /// Uncommitted, unparked, unleased job indices.
    pending: BTreeSet<usize>,
    leases: HashMap<u64, Lease>,
    retries: usize,
    verify: bool,
    quarantined: u64,
    verify_failures: Vec<(usize, String)>,
    /// Campaign-fatal error (journal write failure): exit-code class and
    /// message for the submitter.
    failed: Option<(u8, String)>,
}

impl Campaign {
    fn done(&self) -> bool {
        self.next == self.total
    }

    /// Commits every parked record that has become next-in-line — the
    /// same reorder-buffer discipline as the single-process runner, which
    /// is what keeps the journal byte-identical to it.
    fn drain(&mut self) {
        while let Some(record) = self.parked.remove(&self.next) {
            let _span = psbi_obs::Span::enter_with("fleet.commit", &[("job", self.next as u64)]);
            if let Err(e) = self.journal.append(&record) {
                self.failed = Some((e.code(), e.to_string()));
                // Stop granting: pending work is pointless once the
                // journal cannot take records.
                self.pending.clear();
                return;
            }
            if record.quarantined {
                self.quarantined += 1;
            }
            psbi_obs::metrics::counter_add("fleet.jobs.committed", 1);
            self.next += 1;
        }
    }

    /// Returns a lease's unreturned jobs to the pending set.
    fn expire_lease(&mut self, lease_id: u64, reason: &str) {
        if let Some(lease) = self.leases.remove(&lease_id) {
            let _span = psbi_obs::Span::enter_with(
                "dispatch.redispatch",
                &[("lease", lease_id), ("jobs", lease.jobs.len() as u64)],
            );
            psbi_obs::metrics::counter_add("dispatch.leases.expired", 1);
            psbi_obs::metrics::counter_add("dispatch.jobs.redispatched", lease.jobs.len() as u64);
            self.pending.extend(lease.jobs.iter().copied());
            self.lease_log.expire(lease_id, reason);
        }
    }
}

/// Everything behind the table mutex.
struct Table {
    campaigns: BTreeMap<u64, Campaign>,
    next_campaign: u64,
    next_lease: u64,
    /// Round-robin cursor so lease grants rotate across campaigns.
    rr: u64,
    /// Writer halves of connected worker sessions (for the shutdown
    /// broadcast and to interleave replies line-atomically).
    conns: HashMap<u64, Arc<Mutex<TcpStream>>>,
    next_conn: u64,
    workers: u64,
    /// Set once any worker has ever said hello (gates inline fallback).
    saw_worker: bool,
    started: Instant,
}

struct ServeState {
    opts: ServeOptions,
    table: Mutex<Table>,
    wake: Condvar,
    shutdown: AtomicBool,
    pool: Arc<WorkspacePool>,
    local_addr: SocketAddr,
}

fn lock_table(state: &ServeState) -> MutexGuard<'_, Table> {
    state.table.lock().unwrap_or_else(PoisonError::into_inner)
}

fn update_gauges(t: &Table) {
    psbi_obs::metrics::gauge_set("dispatch.workers.connected", t.workers);
    psbi_obs::metrics::gauge_set(
        "dispatch.leases.outstanding",
        t.campaigns.values().map(|c| c.leases.len() as u64).sum(),
    );
    psbi_obs::metrics::gauge_set("dispatch.campaigns.active", t.campaigns.len() as u64);
}

/// A handle to a running dispatcher: its bound address and a shutdown
/// trigger (used by in-process tests; the CLI shuts down via `--once`).
#[derive(Clone)]
pub struct DispatchHandle {
    state: Arc<ServeState>,
}

impl DispatchHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Asks the dispatcher to stop: workers receive `shutdown`, queued
    /// submissions are rejected, and [`Dispatcher::run`] returns once
    /// in-flight connections unwind.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state);
    }
}

fn initiate_shutdown(state: &ServeState) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    {
        let t = lock_table(state);
        for conn in t.conns.values() {
            let mut w = conn.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = write_msg(&mut *w, &Msg::Shutdown);
            let _ = w.shutdown(Shutdown::Both);
        }
    }
    state.wake.notify_all();
    // Unblock the accept loop.
    let _ = TcpStream::connect(state.local_addr);
}

/// A bound-but-not-yet-running dispatcher (so tests and scripts can learn
/// the address before any connection is handled).
pub struct Dispatcher {
    listener: TcpListener,
    state: Arc<ServeState>,
}

/// Binds and runs a dispatcher until shutdown — the `psbi-fleet serve`
/// entry point.
///
/// # Errors
///
/// Bind/IO failures and `addr_file` write failures.
pub fn serve(opts: ServeOptions) -> Result<(), FleetError> {
    Dispatcher::bind(opts)?.run()
}

impl Dispatcher {
    /// Binds the listen socket and writes `addr_file` (if configured).
    ///
    /// # Errors
    ///
    /// [`FleetError::Dispatch`] when the address cannot be bound;
    /// [`FleetError::Io`] when the addr file cannot be written.
    pub fn bind(opts: ServeOptions) -> Result<Self, FleetError> {
        if opts.progress && !psbi_obs::metrics::enabled() {
            psbi_obs::metrics::arm(None);
        }
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| FleetError::Dispatch(format!("cannot bind `{}`: {e}", opts.addr)))?;
        let local_addr = listener.local_addr()?;
        if let Some(path) = &opts.addr_file {
            std::fs::write(path, format!("{local_addr}\n"))?;
        }
        let state = Arc::new(ServeState {
            opts,
            table: Mutex::new(Table {
                campaigns: BTreeMap::new(),
                next_campaign: 1,
                next_lease: 1,
                rr: 0,
                conns: HashMap::new(),
                next_conn: 1,
                workers: 0,
                saw_worker: false,
                started: Instant::now(),
            }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            pool: Arc::new(WorkspacePool::new()),
            local_addr,
        });
        Ok(Self { listener, state })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// A cloneable handle (address + shutdown trigger).
    pub fn handle(&self) -> DispatchHandle {
        DispatchHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Accepts and serves connections until shutdown.  Blocks; use
    /// [`Dispatcher::handle`] from another thread (or `--once`) to stop.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop IO errors (individual connection failures are
    /// recovered by the lease machinery, not propagated).
    pub fn run(self) -> Result<(), FleetError> {
        let state = &self.state;
        std::thread::scope(|scope| {
            scope.spawn(|| reaper_loop(state));
            scope.spawn(|| inline_loop(state));
            if state.opts.progress {
                scope.spawn(|| progress_loop(state));
            }
            for stream in self.listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        scope.spawn(move || {
                            if let Err(e) = handle_conn(state, stream) {
                                // Connection-level failures are expected
                                // chaos (that is what leases are for);
                                // surface them for debugging only.
                                eprintln!("psbi-fleet: serve: connection ended: {e}");
                            }
                        });
                    }
                    Err(e) => eprintln!("psbi-fleet: serve: accept failed: {e}"),
                }
            }
            // Unblock anything still waiting (queued submitters).
            state.wake.notify_all();
        });
        Ok(())
    }
}

/// Periodically expires overdue leases (and, under the
/// `dispatch.lease.expire_early` failpoint, not-yet-overdue ones — the
/// deterministic test hook for the redispatch path), and flushes the obs
/// sinks so a long-running serve process streams its trace out instead
/// of holding it until exit.
fn reaper_loop(state: &Arc<ServeState>) {
    let tick = Duration::from_millis(state.opts.lease_ms.clamp(40, 1_000) / 4);
    let mut last_flush = Instant::now();
    while !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        {
            let mut t = lock_table(state);
            let now = Instant::now();
            for c in t.campaigns.values_mut() {
                let overdue: Vec<u64> = c
                    .leases
                    .iter()
                    .filter(|(id, lease)| {
                        lease.deadline < now
                            || psbi_fault::failpoint!("dispatch.lease.expire_early", "lease" = **id)
                    })
                    .map(|(id, _)| *id)
                    .collect();
                for id in overdue {
                    c.expire_lease(id, "deadline");
                }
            }
            update_gauges(&t);
        }
        state.wake.notify_all();
        if last_flush.elapsed() >= Duration::from_secs(5) {
            last_flush = Instant::now();
            if let Err(e) = psbi_obs::trace::flush() {
                eprintln!("psbi-fleet: serve: trace flush failed: {e}");
            }
            if let Err(e) = psbi_obs::metrics::flush() {
                eprintln!("psbi-fleet: serve: metrics flush failed: {e}");
            }
        }
    }
}

/// Inline degradation: when no worker is connected (and none has been
/// seen since `inline_grace_ms`), the dispatcher claims leases itself and
/// executes them in-process over the shared pool — same `execute_batch`
/// core, same commit path, so a worker-less serve is just a slow fleet.
fn inline_loop(state: &Arc<ServeState>) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(40));
        let grace = Duration::from_millis(state.opts.inline_grace_ms);
        let claim = {
            let mut t = lock_table(state);
            if t.workers > 0 || t.saw_worker || t.started.elapsed() < grace {
                // Workers own the grid (or may still show up).  After a
                // worker has ever connected, recovery is the lease
                // machinery's job — re-dispatch, not inline takeover.
                continue;
            }
            grant_lease(&mut t, 0, state.opts.lease_ms, state.opts.lease_jobs)
        };
        let Some((lease_id, campaign_id, _spec_text, job_ids, retries, verify)) = claim else {
            continue;
        };
        let (spec, jobs) = {
            let t = lock_table(state);
            let Some(c) = t.campaigns.get(&campaign_id) else {
                continue;
            };
            let jobs: Vec<JobSpec> = job_ids.iter().map(|&j| c.jobs[j].clone()).collect();
            (c.spec.clone(), jobs)
        };
        psbi_obs::metrics::counter_add("dispatch.jobs.inline", job_ids.len() as u64);
        let state2 = Arc::clone(state);
        let mut emit =
            |record: JobRecord, verify_failed: Option<String>| -> Result<bool, FleetError> {
                let mut t = lock_table(&state2);
                let Some(c) = t.campaigns.get_mut(&campaign_id) else {
                    return Ok(false);
                };
                // Renew our own lease so the reaper's expiry (or the
                // `expire_early` failpoint) at worst re-dispatches jobs this
                // batch has not reached — never one already committed.
                if let Some(lease) = c.leases.get_mut(&lease_id) {
                    lease.deadline = Instant::now() + Duration::from_millis(state2.opts.lease_ms);
                }
                let keep_going = c.failed.is_none();
                accept_record(c, lease_id, record, verify_failed);
                state2.wake.notify_all();
                Ok(keep_going && !state2.shutdown.load(Ordering::SeqCst))
            };
        let batch = execute_batch(&spec, &jobs, &state.pool, retries, verify, &mut emit);
        let mut t = lock_table(state);
        if let Some(c) = t.campaigns.get_mut(&campaign_id) {
            if let Err(e) = batch {
                // Inline execution failing to even build the flow is
                // campaign-fatal (a worker would hit the same wall —
                // the spec names an unbuildable circuit).
                c.failed.get_or_insert((e.code(), e.to_string()));
                c.pending.clear();
            }
            if let Some(lease) = c.leases.remove(&lease_id) {
                c.pending.extend(lease.jobs.iter().copied());
                c.lease_log.done(lease_id);
            }
        }
        update_gauges(&t);
        drop(t);
        state.wake.notify_all();
    }
}

/// Per-campaign progress lines: aggregate load from the metrics registry
/// gauges, per-campaign counts from the table.
fn progress_loop(state: &Arc<ServeState>) {
    while !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(500));
        let snap = psbi_obs::metrics::snapshot();
        let workers = snap.gauge("dispatch.workers.connected").unwrap_or(0);
        let t = lock_table(state);
        for (id, c) in &t.campaigns {
            eprintln!(
                "psbi-fleet: serve: campaign {id} `{}` {}/{} committed \
                 ({} quarantined), {} worker(s), {} lease(s) outstanding",
                c.spec.name,
                c.next,
                c.total,
                c.quarantined,
                workers,
                c.leases.len()
            );
        }
    }
}

/// Grants one lease to `conn` (0 = inline): the lowest pending job's
/// circuit, up to `lease_jobs` of its pending jobs (0 = all of them),
/// rotating round-robin across active campaigns.  Returns the lease id,
/// campaign id, spec text, job indices and the campaign's retry/verify
/// settings.
#[allow(clippy::type_complexity)]
fn grant_lease(
    t: &mut Table,
    conn: u64,
    lease_ms: u64,
    lease_jobs: usize,
) -> Option<(u64, u64, String, Vec<usize>, usize, bool)> {
    let ids: Vec<u64> = t
        .campaigns
        .iter()
        .filter(|(_, c)| c.failed.is_none() && !c.pending.is_empty())
        .map(|(id, _)| *id)
        .collect();
    if ids.is_empty() {
        return None;
    }
    let picked = ids[(t.rr as usize) % ids.len()];
    t.rr = t.rr.wrapping_add(1);
    let lease_id = t.next_lease;
    t.next_lease += 1;
    let c = t.campaigns.get_mut(&picked)?;
    let _span = psbi_obs::Span::enter_with(
        "dispatch.lease",
        &[("lease", lease_id), ("campaign", picked)],
    );
    let first = *c.pending.iter().next()?;
    let circuit = c.jobs[first].circuit_index;
    let cap = if lease_jobs == 0 {
        usize::MAX
    } else {
        lease_jobs
    };
    let jobs: BTreeSet<usize> = c
        .pending
        .iter()
        .copied()
        .filter(|&j| c.jobs[j].circuit_index == circuit)
        .take(cap)
        .collect();
    for j in &jobs {
        c.pending.remove(j);
    }
    let job_list: Vec<usize> = jobs.iter().copied().collect();
    c.lease_log.grant(lease_id, conn, &jobs);
    c.leases.insert(
        lease_id,
        Lease {
            jobs,
            deadline: Instant::now() + Duration::from_millis(lease_ms),
            conn,
        },
    );
    psbi_obs::metrics::counter_add("dispatch.leases.granted", 1);
    let grant = (
        lease_id,
        picked,
        c.spec_text.clone(),
        job_list,
        c.retries,
        c.verify,
    );
    update_gauges(t);
    Some(grant)
}

/// Feeds one verified record into a campaign's reorder buffer.  A job
/// already committed or parked is a duplicate (first-committed-wins) and
/// is discarded; everything else is accepted, whether it arrives under a
/// live lease, a stale lease or no lease at all (a "late" result from a
/// worker whose lease expired is still a perfectly good pure-function
/// result).
fn accept_record(
    c: &mut Campaign,
    lease_id: u64,
    record: JobRecord,
    verify_failed: Option<String>,
) {
    let job = record.job;
    // Whichever lease currently holds the job releases it — including a
    // *different* lease after a re-dispatch, whose worker's eventual copy
    // then lands in the duplicate path below.
    let mut emptied = None;
    for (&id, lease) in c.leases.iter_mut() {
        if lease.jobs.remove(&job) && lease.jobs.is_empty() {
            emptied = Some(id);
        }
    }
    if let Some(id) = emptied {
        c.leases.remove(&id);
        c.lease_log.done(id);
    }
    let duplicate = job < c.next || c.parked.contains_key(&job);
    if duplicate {
        psbi_obs::metrics::counter_add("dispatch.results.duplicate", 1);
        return;
    }
    c.pending.remove(&job);
    if let Some(report) = verify_failed {
        c.verify_failures.push((job, report));
    }
    psbi_obs::metrics::counter_add("dispatch.results.accepted", 1);
    let _ = lease_id; // correlation is by job index; the lease id is diagnostics
    c.parked.insert(job, record);
    c.drain();
}

/// Dispatches one accepted connection by its first message.
fn handle_conn(state: &Arc<ServeState>, stream: TcpStream) -> Result<(), FleetError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    match read_msg(&mut reader)? {
        Some(Msg::Submit {
            spec,
            journal,
            retries,
            verify,
        }) => handle_submitter(state, &writer, &spec, &journal, retries, verify),
        Some(Msg::Hello { worker }) => handle_worker(state, &mut reader, &writer, &worker),
        Some(other) => Err(FleetError::Dispatch(format!(
            "expected submit or hello, got {}",
            other.to_line()
        ))),
        None => Ok(()), // probe connection (e.g. the shutdown self-connect)
    }
}

fn send(writer: &Arc<Mutex<TcpStream>>, msg: &Msg) -> Result<(), FleetError> {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    write_msg(&mut *w, msg).map_err(FleetError::Io)
}

/// Admits a campaign (queueing behind `max_campaigns`) and returns its id.
fn admit_campaign(
    state: &Arc<ServeState>,
    spec_text: &str,
    journal_path: &str,
    retries: usize,
    verify: bool,
) -> Result<u64, FleetError> {
    let spec = CampaignSpec::from_json(spec_text)?;
    spec.validate()?;
    // Re-render: leases must carry the *canonical* spec bytes so worker
    // and dispatcher compute identical fingerprints and grids.
    let spec_text = spec.to_json();
    let jobs = spec.jobs();
    let total = jobs.len();
    let path = PathBuf::from(journal_path);
    let mut t = lock_table(state);
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return Err(FleetError::Dispatch("dispatcher is shutting down".into()));
        }
        if t.campaigns.values().any(|c| c.journal_path == path) {
            return Err(FleetError::Dispatch(format!(
                "a campaign is already active on journal `{journal_path}`"
            )));
        }
        if t.campaigns.len() < state.opts.max_campaigns.max(1) {
            break;
        }
        let (guard, _) = state
            .wake
            .wait_timeout(t, Duration::from_millis(200))
            .unwrap_or_else(PoisonError::into_inner);
        t = guard;
    }
    let (journal, existing) = Journal::open(&path, &spec)?;
    let resumed = existing.len();
    let quarantined = existing.iter().filter(|r| r.quarantined).count() as u64;
    let (lease_log, orphans, max_lease) =
        LeaseLog::open(&PathBuf::from(format!("{}.leases", path.display())))?;
    if orphans > 0 {
        psbi_obs::metrics::counter_add("dispatch.leases.orphaned", orphans as u64);
        eprintln!(
            "psbi-fleet: serve: journal `{journal_path}` left {orphans} orphaned lease(s) \
             from a previous dispatcher (their jobs are pending again)"
        );
    }
    t.next_lease = t.next_lease.max(max_lease + 1);
    let id = t.next_campaign;
    t.next_campaign += 1;
    t.campaigns.insert(
        id,
        Campaign {
            fingerprint: spec.fingerprint(),
            spec,
            spec_text,
            jobs,
            journal,
            journal_path: path,
            lease_log,
            total,
            next: resumed,
            resumed,
            parked: BTreeMap::new(),
            pending: (resumed..total).collect(),
            leases: HashMap::new(),
            retries,
            verify,
            quarantined,
            verify_failures: Vec::new(),
            failed: None,
        },
    );
    psbi_obs::metrics::counter_add("dispatch.campaigns.submitted", 1);
    update_gauges(&t);
    drop(t);
    state.wake.notify_all();
    Ok(id)
}

/// What the submit loop observed a campaign end as.
enum CampaignEnd {
    Done { committed: usize, quarantined: u64 },
    Failed { code: u8, message: String },
}

/// Serves one submitter: admit, stream progress, report the end state,
/// then retire the campaign (dropping its journal handle and lock).
fn handle_submitter(
    state: &Arc<ServeState>,
    writer: &Arc<Mutex<TcpStream>>,
    spec_text: &str,
    journal_path: &str,
    retries: usize,
    verify: bool,
) -> Result<(), FleetError> {
    let id = match admit_campaign(state, spec_text, journal_path, retries, verify) {
        Ok(id) => id,
        Err(e) => {
            let _ = send(
                writer,
                &Msg::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            );
            return Err(e);
        }
    };
    let (total, resumed) = {
        let t = lock_table(state);
        let c = &t.campaigns[&id];
        (c.total, c.resumed)
    };
    let _span = psbi_obs::Span::enter_with(
        "dispatch.campaign",
        &[("campaign", id), ("jobs", total as u64)],
    );
    // The submitter may die; the campaign must not.  After a failed
    // write we stop talking but keep draining until the journal is done.
    let mut submitter_alive = send(
        writer,
        &Msg::Accepted {
            campaign: id,
            total,
            resumed,
        },
    )
    .is_ok();
    let mut last_progress = (resumed, Instant::now());
    let end = loop {
        let mut t = lock_table(state);
        let table = &mut *t;
        let c = table
            .campaigns
            .get_mut(&id)
            .expect("only this thread retires the campaign");
        if let Some((code, message)) = c.failed.clone() {
            // Outstanding leases are expired (`campaign-failed`) during
            // retirement below, so the advisory lease log closes every
            // grant; a late result for the retired campaign is acked as
            // a duplicate.
            break CampaignEnd::Failed { code, message };
        }
        if c.done() {
            break if c.verify_failures.is_empty() {
                CampaignEnd::Done {
                    committed: c.next,
                    quarantined: c.quarantined,
                }
            } else {
                let detail: Vec<String> = c
                    .verify_failures
                    .iter()
                    .map(|(job, report)| format!("job {job}: {report}"))
                    .collect();
                CampaignEnd::Failed {
                    code: 9,
                    message: format!(
                        "{} of {} job(s) failed independent verification — {}",
                        c.verify_failures.len(),
                        c.total,
                        detail.join("; ")
                    ),
                }
            };
        }
        let progress = (c.next, c.quarantined, table.workers);
        drop(
            state
                .wake
                .wait_timeout(t, Duration::from_millis(200))
                .unwrap_or_else(PoisonError::into_inner)
                .0,
        );
        if submitter_alive
            && (progress.0 > last_progress.0 || last_progress.1.elapsed().as_secs() >= 2)
        {
            last_progress = (progress.0, Instant::now());
            submitter_alive = send(
                writer,
                &Msg::Progress {
                    campaign: id,
                    committed: progress.0,
                    total,
                    quarantined: progress.1,
                    workers: progress.2,
                },
            )
            .is_ok();
        }
    };
    // Retire: close out whatever leases are still outstanding (a failed
    // campaign abandons them; a completed one has none) so the advisory
    // lease log matches reality — a grant left open here would read as
    // a crash orphan on the journal's next open — then drop the journal
    // handle (and its advisory lock) before announcing the result, so a
    // submitter chaining a `report` or a follow-up campaign never races
    // the lock.
    {
        let mut t = lock_table(state);
        if let Some(c) = t.campaigns.get_mut(&id) {
            let reason = match &end {
                CampaignEnd::Done { .. } => "campaign-done",
                CampaignEnd::Failed { .. } => "campaign-failed",
            };
            for lid in c.leases.keys().copied().collect::<Vec<u64>>() {
                c.expire_lease(lid, reason);
            }
        }
        t.campaigns.remove(&id);
        update_gauges(&t);
    }
    state.wake.notify_all();
    match &end {
        CampaignEnd::Done {
            committed,
            quarantined,
        } => {
            psbi_obs::metrics::counter_add("dispatch.campaigns.completed", 1);
            if submitter_alive {
                let _ = send(
                    writer,
                    &Msg::Done {
                        campaign: id,
                        committed: *committed,
                        quarantined: *quarantined,
                    },
                );
            }
        }
        CampaignEnd::Failed { code, message } => {
            if submitter_alive {
                let _ = send(
                    writer,
                    &Msg::Error {
                        code: *code,
                        message: message.clone(),
                    },
                );
            }
        }
    }
    if state.opts.once {
        initiate_shutdown(state);
    }
    Ok(())
}

/// Serves one worker session: grant leases, renew them on heartbeats,
/// verify + accept results, and expire everything the session held the
/// moment it ends (for whatever reason).
fn handle_worker(
    state: &Arc<ServeState>,
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    worker_name: &str,
) -> Result<(), FleetError> {
    let conn_id = {
        let mut t = lock_table(state);
        let id = t.next_conn;
        t.next_conn += 1;
        t.workers += 1;
        t.saw_worker = true;
        t.conns.insert(id, Arc::clone(writer));
        update_gauges(&t);
        id
    };
    // A worker that says nothing for several lease periods is gone even
    // if its TCP connection lingers (e.g. a stalled process): time the
    // read out and let the cleanup below expire its leases.
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(
            state.opts.lease_ms.max(500) * 4,
        )));
    let outcome = worker_session(state, reader, writer, conn_id);
    let mut t = lock_table(state);
    t.workers -= 1;
    t.conns.remove(&conn_id);
    let held: Vec<(u64, u64)> = t
        .campaigns
        .iter()
        .flat_map(|(cid, c)| {
            c.leases
                .iter()
                .filter(|(_, lease)| lease.conn == conn_id)
                .map(|(lid, _)| (*cid, *lid))
        })
        .collect();
    for (cid, lid) in held {
        if let Some(c) = t.campaigns.get_mut(&cid) {
            c.expire_lease(lid, "conn-closed");
        }
    }
    update_gauges(&t);
    drop(t);
    state.wake.notify_all();
    if let Err(e) = &outcome {
        eprintln!("psbi-fleet: serve: worker `{worker_name}` session ended: {e}");
    }
    outcome
}

fn worker_session(
    state: &Arc<ServeState>,
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    conn_id: u64,
) -> Result<(), FleetError> {
    loop {
        let msg = match read_msg(reader) {
            Ok(Some(msg)) => msg,
            Ok(None) => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            Msg::Request => {
                if state.shutdown.load(Ordering::SeqCst) {
                    send(writer, &Msg::Shutdown)?;
                    return Ok(());
                }
                let grant = {
                    let mut t = lock_table(state);
                    grant_lease(&mut t, conn_id, state.opts.lease_ms, state.opts.lease_jobs)
                };
                match grant {
                    Some((lease, campaign, spec, jobs, retries, verify)) => send(
                        writer,
                        &Msg::Lease {
                            lease,
                            campaign,
                            spec,
                            jobs,
                            deadline_ms: state.opts.lease_ms,
                            heartbeat_ms: state.opts.heartbeat_ms,
                            retries,
                            verify,
                        },
                    )?,
                    None => send(writer, &Msg::Wait { ms: 200 })?,
                }
            }
            Msg::Heartbeat { lease } => {
                let _span = psbi_obs::Span::enter_with("dispatch.heartbeat", &[("lease", lease)]);
                psbi_obs::metrics::counter_add("dispatch.heartbeats", 1);
                let mut live = false;
                {
                    let mut t = lock_table(state);
                    for c in t.campaigns.values_mut() {
                        if let Some(l) = c.leases.get_mut(&lease) {
                            l.deadline =
                                Instant::now() + Duration::from_millis(state.opts.lease_ms);
                            live = true;
                        }
                    }
                }
                if !live {
                    send(writer, &Msg::Expired { lease })?;
                }
            }
            Msg::Result {
                lease,
                campaign,
                fingerprint,
                record,
                verify_failed,
            } => {
                if psbi_fault::failpoint!("dispatch.conn.drop", "campaign" = campaign) {
                    // Drop the connection *before* processing: the worker
                    // never sees an ack, reconnects, and the record is
                    // either re-sent from its unacked cache or recomputed
                    // — identical bytes either way.
                    return Err(FleetError::Dispatch(
                        "injected fault: dispatch.conn.drop".into(),
                    ));
                }
                let parsed = match JobRecord::from_json_line(&record) {
                    Ok(parsed) => parsed,
                    Err(e) => {
                        // Torn or corrupted in transit: protocol
                        // violation, drop the connection, let the lease
                        // machinery re-dispatch.
                        psbi_obs::metrics::counter_add("dispatch.results.torn", 1);
                        return Err(FleetError::Dispatch(format!(
                            "result record failed verification: {e}"
                        )));
                    }
                };
                let job = parsed.job;
                {
                    let mut t = lock_table(state);
                    if let Some(c) = t.campaigns.get_mut(&campaign) {
                        // The record must be the pure function of (this
                        // campaign's spec, its job index) it claims to
                        // be.  A fingerprint mismatch means the worker
                        // computed it for a *different* campaign that
                        // shared the id across a dispatcher restart;
                        // the grid-identity check catches the same
                        // confusion from a worker that never learned
                        // fingerprints.  Either way the bytes are
                        // foreign: drop the connection (no ack) and let
                        // the lease machinery re-dispatch.
                        if fingerprint != c.fingerprint {
                            return Err(FleetError::Dispatch(format!(
                                "result for campaign {campaign} carries spec fingerprint \
                                 {fingerprint}, expected {}",
                                c.fingerprint
                            )));
                        }
                        if job >= c.total {
                            return Err(FleetError::Dispatch(format!(
                                "result names job {job} outside the {}-job grid",
                                c.total
                            )));
                        }
                        let expected = &c.jobs[job];
                        if parsed.circuit_id != expected.circuit.id()
                            || parsed.sigma_factor.to_bits() != expected.sigma_factor.to_bits()
                        {
                            return Err(FleetError::Dispatch(format!(
                                "record for job {job} does not match the campaign grid \
                                 (circuit `{}` σ {}, expected `{}` σ {})",
                                parsed.circuit_id,
                                parsed.sigma_factor,
                                expected.circuit.id(),
                                expected.sigma_factor
                            )));
                        }
                        accept_record(
                            c,
                            lease,
                            parsed,
                            (!verify_failed.is_empty()).then_some(verify_failed),
                        );
                    } else {
                        // Campaign already retired (completed while this
                        // result was in flight): the record is a
                        // duplicate by construction.
                        psbi_obs::metrics::counter_add("dispatch.results.duplicate", 1);
                    }
                    update_gauges(&t);
                }
                state.wake.notify_all();
                send(writer, &Msg::Ack { campaign, job })?;
            }
            Msg::Goodbye => return Ok(()),
            other => {
                return Err(FleetError::Dispatch(format!(
                    "unexpected worker message {}",
                    other.to_line()
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("psbi_dispatch_test_{tag}_{}", std::process::id()))
    }

    #[test]
    fn lease_log_round_trips_and_counts_orphans() {
        let path = tmp("leaselog");
        let _ = std::fs::remove_file(&path);
        let (mut log, orphans, max) = LeaseLog::open(&path).unwrap();
        assert_eq!((orphans, max), (0, 0));
        log.grant(1, 7, &BTreeSet::from([0, 1]));
        log.grant(2, 7, &BTreeSet::from([2]));
        log.done(1);
        log.expire(2, "deadline");
        log.grant(3, 8, &BTreeSet::from([2]));
        drop(log);
        // Leases 1 and 2 closed, 3 orphaned (dispatcher "crashed").
        let (_log, orphans, max) = LeaseLog::open(&path).unwrap();
        assert_eq!(orphans, 1);
        assert_eq!(max, 3);
        // A torn tail line is tolerated.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"ev\":\"grant\",\"lea");
        std::fs::write(&path, &bytes).unwrap();
        let (_log, orphans, max) = LeaseLog::open(&path).unwrap();
        assert_eq!(orphans, 1);
        assert_eq!(max, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_and_late_results_discard_deterministically() {
        let spec = CampaignSpec::example();
        let jobs = spec.jobs();
        let total = jobs.len();
        let journal_path = tmp("dup.journal");
        let lease_path = tmp("dup.journal.leases");
        for p in [&journal_path, &lease_path] {
            let _ = std::fs::remove_file(p);
        }
        let (journal, _) = Journal::open(&journal_path, &spec).unwrap();
        let (lease_log, _, _) = LeaseLog::open(&lease_path).unwrap();
        let mut c = Campaign {
            spec_text: spec.to_json(),
            fingerprint: spec.fingerprint(),
            jobs: jobs.clone(),
            spec,
            journal,
            journal_path: journal_path.clone(),
            lease_log,
            total,
            next: 0,
            resumed: 0,
            parked: BTreeMap::new(),
            pending: (0..total).collect(),
            leases: HashMap::new(),
            retries: 0,
            verify: false,
            quarantined: 0,
            verify_failures: Vec::new(),
            failed: None,
        };
        let rec = |j: usize| JobRecord::quarantined(&jobs[j], "test".into());

        // Out-of-order arrival parks; in-order commits and drains.
        c.pending.remove(&1);
        accept_record(&mut c, 1, rec(1), None);
        assert_eq!(c.next, 0);
        assert_eq!(c.parked.len(), 1);
        c.pending.remove(&0);
        accept_record(&mut c, 2, rec(0), None);
        assert_eq!(c.next, 2);
        assert!(c.parked.is_empty());

        // A duplicate of a committed job is discarded, not re-journaled.
        let bytes_before = std::fs::read(&journal_path).unwrap();
        accept_record(&mut c, 3, rec(0), None);
        assert_eq!(c.next, 2);
        assert_eq!(std::fs::read(&journal_path).unwrap(), bytes_before);

        // A "late" result with no live lease is accepted if uncommitted.
        c.pending.remove(&2);
        accept_record(&mut c, 0, rec(2), None);
        assert_eq!(c.next, 3);

        // A result releases its job from whatever lease holds it, and an
        // emptied lease retires.
        c.leases.insert(
            9,
            Lease {
                jobs: BTreeSet::from([3]),
                deadline: Instant::now(),
                conn: 1,
            },
        );
        c.pending.remove(&3);
        accept_record(&mut c, 9, rec(3), None);
        assert!(c.leases.is_empty());
        assert!(c.done());
        for p in [&journal_path, &lease_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn expired_lease_returns_only_unreturned_jobs() {
        let spec = CampaignSpec::example();
        let jobs = spec.jobs();
        let journal_path = tmp("exp.journal");
        let lease_path = tmp("exp.journal.leases");
        for p in [&journal_path, &lease_path] {
            let _ = std::fs::remove_file(p);
        }
        let (journal, _) = Journal::open(&journal_path, &spec).unwrap();
        let (lease_log, _, _) = LeaseLog::open(&lease_path).unwrap();
        let total = jobs.len();
        let mut c = Campaign {
            spec_text: spec.to_json(),
            fingerprint: spec.fingerprint(),
            jobs: jobs.clone(),
            spec,
            journal,
            journal_path,
            lease_log,
            total,
            next: 0,
            resumed: 0,
            parked: BTreeMap::new(),
            pending: BTreeSet::new(),
            leases: HashMap::new(),
            retries: 0,
            verify: false,
            quarantined: 0,
            verify_failures: Vec::new(),
            failed: None,
        };
        c.leases.insert(
            5,
            Lease {
                jobs: BTreeSet::from([0, 1]),
                deadline: Instant::now(),
                conn: 2,
            },
        );
        // Job 0 came back before the lease expired.
        accept_record(
            &mut c,
            5,
            JobRecord::quarantined(&jobs[0], "t".into()),
            None,
        );
        c.expire_lease(5, "deadline");
        // Only job 1 is re-dispatched; job 0 is committed.
        assert_eq!(c.pending, BTreeSet::from([1]));
        assert_eq!(c.next, 1);
        let lease_file = tmp("exp.journal.leases");
        let journal_file = tmp("exp.journal");
        for p in [&lease_file, &journal_file] {
            let _ = std::fs::remove_file(p);
        }
    }
}
