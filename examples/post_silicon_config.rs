//! Post-silicon configuration — the paper's "future work", implemented.
//!
//! After the design-time flow has fixed buffer locations and windows, every
//! manufactured chip is measured and its buffers are programmed
//! individually.  This example replays chips from the yield-evaluation
//! stream, configures each one with [`psbi::core::configure::configure_chip`]
//! and verifies the setting.
//!
//! ```text
//! cargo run --release --example post_silicon_config
//! ```

use psbi::core::configure::{configure_chip, verify};
use psbi::core::flow::{BufferInsertionFlow, FlowConfig, SampleRequest, TargetPeriod};
use psbi::netlist::bench_suite;

fn main() {
    let circuit = bench_suite::small_demo(7);
    let cfg = FlowConfig {
        samples: 800,
        yield_samples: 2_000,
        target: TargetPeriod::SigmaFactor(0.0),
        ..FlowConfig::default()
    };
    let flow = BufferInsertionFlow::builder(&circuit, cfg)
        .build()
        .expect("valid circuit");
    let result = flow.run();
    println!(
        "design-time flow inserted {} buffer(s); windows: {:?}",
        result.nb, result.deployment.bounds
    );

    // "Manufacture" 20 chips from the evaluation stream and program them.
    let mut configured = 0;
    let mut needed_tuning = 0;
    let mut dead = 0;
    for chip in 0..20u64 {
        let ic = flow.chip_constraints(SampleRequest::new(
            "yield",
            chip,
            result.period,
            result.step,
        ));
        match configure_chip(flow.sequential_graph(), &ic, &result.deployment) {
            Some(conf) => {
                assert!(
                    verify(
                        flow.sequential_graph(),
                        &ic,
                        &result.deployment,
                        &conf.settings
                    ),
                    "configuration must verify"
                );
                configured += 1;
                if conf.settings.iter().any(|s| *s != 0) {
                    needed_tuning += 1;
                }
                println!("chip {chip:>2}: PASS   settings = {:?}", conf.settings);
            }
            None => {
                dead += 1;
                println!("chip {chip:>2}: FAIL   (not rescuable at this period)");
            }
        }
    }
    println!();
    println!(
        "{configured}/20 chips configured ({needed_tuning} required nonzero tuning), {dead} dead"
    );
}
