//! Property-based tests: `.plib` round trips and delay-model invariants.

use proptest::prelude::*;
use psbi_liberty::{parse, to_text, CellDef, CellFunction, FlipFlopDef, Library};
use psbi_variation::VariationModel;

fn arb_function() -> impl Strategy<Value = CellFunction> {
    use CellFunction::*;
    prop_oneof![
        Just(Inv),
        Just(Buf),
        Just(Nand),
        Just(Nor),
        Just(And),
        Just(Or),
        Just(Xor),
        Just(Xnor),
        Just(Aoi),
        Just(Oai),
        Just(Mux),
    ]
}

prop_compose! {
    fn arb_cell(id: usize)(
        function in arb_function(),
        inputs in 1u8..4,
        intrinsic in 1.0f64..60.0,
        drive in 0.5f64..15.0,
        input_cap in 0.2f64..4.0,
        s0 in -0.2f64..1.4,
        s1 in -0.2f64..1.4,
        s2 in -0.2f64..1.4,
    ) -> CellDef {
        CellDef {
            name: format!("CELL{id}"),
            function,
            inputs,
            // Round to keep text round-trips exact.
            intrinsic: (intrinsic * 64.0).round() / 64.0,
            drive: (drive * 64.0).round() / 64.0,
            input_cap: (input_cap * 64.0).round() / 64.0,
            sens: [
                (s0 * 64.0).round() / 64.0,
                (s1 * 64.0).round() / 64.0,
                (s2 * 64.0).round() / 64.0,
            ],
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary libraries survive a text round trip exactly.
    #[test]
    fn plib_round_trip(cells in proptest::collection::vec(arb_cell(0), 1..8)) {
        let mut lib = Library::new("prop");
        lib.wire_cap_per_fanout = 0.5;
        for (i, mut c) in cells.into_iter().enumerate() {
            c.name = format!("CELL{i}");
            lib.add_cell(c).expect("valid cell");
        }
        lib.add_ff(FlipFlopDef {
            name: "FF".into(),
            setup: 20.0,
            hold: 5.0,
            clk_to_q: 30.0,
            drive: 6.0,
            d_cap: 1.0,
            clk_cap: 1.0,
            sens: [0.5, 0.25, 0.125],
        })
        .expect("valid ff");
        let text = to_text(&lib);
        let parsed = parse(&text).expect("round trip parses");
        prop_assert_eq!(parsed.cells(), lib.cells());
        prop_assert_eq!(parsed.ffs(), lib.ffs());
        prop_assert_eq!(parsed.wire_cap_per_fanout, lib.wire_cap_per_fanout);
    }

    /// Canonical delay forms preserve the nominal mean and scale their
    /// spread with load.
    #[test]
    fn canonical_delay_invariants(cell in arb_cell(0), load in 0.0f64..20.0) {
        let model = VariationModel::paper_defaults();
        let canon = cell.delay_canonical(load, &model);
        prop_assert!((canon.mean() - cell.delay(load)).abs() < 1e-9);
        // Variance decomposition: total sigma grows with |nominal|.
        let bigger = cell.delay_canonical(load + 5.0, &model);
        if cell.sens.iter().any(|s| *s != 0.0) && cell.drive > 0.0 {
            prop_assert!(bigger.sigma() >= canon.sigma() - 1e-12);
        }
    }

    /// Garbage never panics the parser — it errors with a line number.
    #[test]
    fn parser_never_panics(garbage in "\\PC*") {
        match parse(&garbage) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.line >= 1 || e.message.contains("end of input")
                || !e.message.is_empty()),
        }
    }
}
