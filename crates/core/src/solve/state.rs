//! Persistent per-chip solver state: the cross-pass (and cross-target)
//! incremental cache.
//!
//! The flow re-solves the *same* deterministic chip population once per
//! pass (III-A1 → III-A3 → III-B1 → III-B2), and a fleet sweep re-solves
//! it once per adjacent target on top.  A [`ChipSolveState`] carries the
//! expensive intermediates of one chip's solve from pass to pass so each
//! re-solve only pays for what actually changed.  Reuse is always a
//! **verified fast path**: every cached artefact is guarded by an exact
//! value comparison of the inputs it was derived from (no hashing — a
//! collision could silently replay a wrong answer), so enabling the cache
//! can never change a result.  `PSBI_NO_INCREMENTAL=1` bypasses it
//! entirely and is bit-identical by construction.
//!
//! # Cached artefacts and their invalidation keys
//!
//! | artefact | valid while … |
//! |---|---|
//! | region decomposition (per radius) | ordered violated-constraint endpoints and [`SolverOptions`](super::SolverOptions) are unchanged, and `has_buffer` is unchanged over discovery's exact read set (violated endpoints, region FFs, their neighbours) — so a prune far from the chip's regions keeps the cache |
//! | region search outcome (support, witness, count, exactness) | … additionally, the region's materialised constraint bounds and its FFs' tuning windows are unchanged |
//! | whole-chip saturation witness | validated per use by [`DiffSolver`](psbi_timing::feasibility::DiffSolver) — never trusted, only re-checked |
//!
//! Between A1 and A3 the prune changes `has_buffer` at a few rarely-used
//! FFs, so most chips replay their decompositions *and* search outcomes
//! (the constraint bounds are identical — same stream, period and step);
//! between A3 and B1/B2 the window assignment (III-A4) changes only the
//! *bounds*, so the decomposition replays while the searches re-run;
//! between B1 and B2 nothing changes, so the search outcomes replay too
//! and B2 pays only its concentration MILPs.  Across adjacent sweep
//! targets the constraint bounds shift with the period, so outcome replay
//! is rare but decomposition replay still fires whenever a chip's
//! violated endpoints coincide.

use super::{BufferSpace, RegCons, Region, SolverOptions};
use psbi_timing::{SequentialGraph, Violation};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Cache-efficacy counters of one sampling pass, aggregated over chips.
///
/// The workload and per-chip-reuse counters are deterministic for a fixed
/// arena history (order-free sums over per-chip events that depend only
/// on the chip index and the pass sequence).  [`PassDiagnostics::cross_chip_hits`]
/// is **not**: whether a chip hits the shared memo table depends on which
/// racing worker published the key first.  None of it is part of any
/// canonical output surface — the counters differ between incremental and
/// `PSBI_NO_INCREMENTAL=1` / `PSBI_NO_CROSSCHIP=1` runs, so journals and
/// canonical reports must never embed them.
///
/// Per-stage wall times, which used to ride along here, now live in the
/// `psbi_obs` metrics histograms (`solve.stage.discovery` / `.screen` /
/// `.search` / `.milp`) — recorded only when the registry is armed, so
/// the disarmed solve pays no clock reads at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PassDiagnostics {
    /// Regions processed (counted once per round they participate in).
    pub regions_total: u64,
    /// Regions larger than [`SolverOptions::region_cap`](super::SolverOptions::region_cap),
    /// solved by the inexact sparsified-witness fallback.
    pub regions_saturated: u64,
    /// Regions whose decomposition was replayed from a previous pass.
    pub regions_reused: u64,
    /// Regions whose entire search outcome (optimal support set, witness,
    /// count) was replayed from a previous pass *of the same chip*.
    pub supports_rehit: u64,
    /// Regions whose search outcome was replayed from the flow-level
    /// cross-chip memo table (published by **any** chip of any pass —
    /// usually a different chip of the same pass).  Schedule-dependent
    /// with more than one worker; results never are.
    pub cross_chip_hits: u64,
    /// Branch-and-bound nodes visited by fresh region searches.  Each
    /// search's count is a deterministic function of its region system
    /// and the prune mode, but the *sum* inherits the memo caveat above:
    /// a racy cross-chip hit skips a search entirely.  Single-worker
    /// runs are exactly reproducible (what the perf gate pins).
    pub search_nodes: u64,
    /// Subtrees cut by the covering/matching lower bounds.
    pub search_pruned_bound: u64,
    /// `In` branches skipped by dominance elimination (wider-window twin
    /// already explored).
    pub search_pruned_dominance: u64,
    /// `In` branches skipped by symmetry breaking (lower-slot
    /// interchangeable twin already explored).
    pub search_pruned_symmetry: u64,
}

impl PassDiagnostics {
    /// Accumulates another pass/chunk worth of counters.
    pub fn merge(&mut self, other: &Self) {
        self.regions_total += other.regions_total;
        self.regions_saturated += other.regions_saturated;
        self.regions_reused += other.regions_reused;
        self.supports_rehit += other.supports_rehit;
        self.cross_chip_hits += other.cross_chip_hits;
        self.search_nodes += other.search_nodes;
        self.search_pruned_bound += other.search_pruned_bound;
        self.search_pruned_dominance += other.search_pruned_dominance;
        self.search_pruned_symmetry += other.search_pruned_symmetry;
    }
}

/// Push-independent search outcome of one region (the part of a region
/// solve that [`PushObjective`](super::PushObjective) does not influence).
///
/// Shared behind `Arc` between the per-chip state arenas and the
/// flow-level cross-chip memo table, so publishing or replaying an
/// outcome never copies the support/witness vectors.
#[derive(Debug, Clone)]
pub(crate) enum CachedOutcome {
    /// The region (at this radius) admits no feasible support.
    Infeasible,
    /// A support was found.
    Feasible {
        /// Support size (the paper's per-chip `n_k` contribution).
        count: usize,
        /// The support FFs, in pinned search order.
        support: Vec<u32>,
        /// Witness tuning per support entry.
        witness: Vec<i64>,
        /// Whether the search proved optimality.
        exact: bool,
    },
}

/// One region plus the exact inputs its cached outcome was derived from.
#[derive(Debug)]
pub(crate) struct CachedRegion {
    pub(crate) region: Region,
    /// The materialised (saturation-normalised, vacuous-elided)
    /// constraint system at search time — full `(a, b, bound)` triples,
    /// not just bounds: elision makes the *surviving subset* vary
    /// between passes, so two systems can agree on every bound value
    /// positionally while constraining different endpoint pairs.
    pub(crate) cons_bounds: Vec<RegCons>,
    /// Tuning windows over `region.ffs` at search time.
    pub(crate) ff_bounds: Vec<(i64, i64)>,
    /// The search outcome those inputs produced (shared with the
    /// cross-chip memo table when one is active).
    pub(crate) outcome: Option<Arc<CachedOutcome>>,
}

impl CachedRegion {
    pub(crate) fn new(region: Region) -> Self {
        Self {
            region,
            cons_bounds: Vec::new(),
            ff_bounds: Vec::new(),
            outcome: None,
        }
    }

    /// Exact input comparison for outcome replay: the entire surviving
    /// (saturation-normalised) constraint system — endpoints *and*
    /// bounds — and every tuning window the search read must be
    /// unchanged.
    pub(crate) fn outcome_replayable(&self, cons: &[RegCons], space: &BufferSpace) -> bool {
        self.outcome.is_some()
            && self.cons_bounds.len() == cons.len()
            && self.ff_bounds.len() == self.region.ffs.len()
            && cons
                .iter()
                .zip(&self.cons_bounds)
                .all(|(c, cached)| c.a == cached.a && c.b == cached.b && c.bound == cached.bound)
            && self
                .region
                .ffs
                .iter()
                .zip(&self.ff_bounds)
                .all(|(ff, cached)| space.bounds[*ff as usize] == *cached)
    }

    /// Records the inputs and outcome of a fresh search (or a verified
    /// cross-chip memo hit).
    pub(crate) fn record(
        &mut self,
        cons: &[RegCons],
        space: &BufferSpace,
        outcome: Arc<CachedOutcome>,
    ) {
        self.cons_bounds.clear();
        self.cons_bounds.extend_from_slice(cons);
        self.ff_bounds.clear();
        self.ff_bounds
            .extend(self.region.ffs.iter().map(|ff| space.bounds[*ff as usize]));
        self.outcome = Some(outcome);
    }
}

/// Decomposition cache for one growth radius.
#[derive(Debug)]
pub(crate) struct RadiusEntry {
    pub(crate) radius: usize,
    pub(crate) regions: Vec<CachedRegion>,
}

/// Persistent solver state of one Monte-Carlo chip (see the module docs).
///
/// One instance per chip index lives in the flow's per-target state arena;
/// standalone users construct one per chip with [`ChipSolveState::new`]
/// and attach it with
/// [`SolveRequest::state`](super::SolveRequest::state).
///
/// A state is bound to **one** [`SequentialGraph`]: cached regions store
/// edge indices and adjacency-derived structure that only mean anything
/// against the graph they were discovered on.  The flow enforces this by
/// owner-keying its arenas per flow instance; standalone users must not
/// hand one state to solves against different graphs.  As a backstop,
/// revalidation rejects (and clears) any state whose recorded graph
/// dimensions disagree with the current graph, so a mixed-up state
/// degrades to a cold solve instead of replaying foreign regions.
#[derive(Debug, Default)]
pub struct ChipSolveState {
    /// Dimensions `(n_ffs, n_edges)` of the graph the cache was built
    /// against — the cross-graph misuse backstop.
    pub(crate) graph_dims: Option<(usize, usize)>,
    /// The buffer space the cached decompositions were built against.
    /// `Arc::ptr_eq` is the cheap same-pass/same-space fast path; a full
    /// `has_buffer` comparison is the fallback (bounds are deliberately
    /// *not* compared here — they only gate outcome replay, per region).
    pub(crate) space: Option<Arc<BufferSpace>>,
    /// Solver limits the cache was built under.
    pub(crate) opts: Option<SolverOptions>,
    /// The chip's violated-constraint fingerprint at cache time.
    pub(crate) violated: Vec<Violation>,
    /// Decompositions, one per growth radius seen (initial radius first).
    pub(crate) rounds: Vec<RadiusEntry>,
    /// Carried witness for the whole-chip saturation screen; imported into
    /// the [`DiffSolver`](psbi_timing::feasibility::DiffSolver) warm slot
    /// and fully re-validated there before use.
    pub(crate) fixable_witness: Vec<i64>,
    pub(crate) fixable_ok: bool,
}

impl ChipSolveState {
    /// An empty state (everything cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Chip-level revalidation: returns `true` when the cached region
    /// decompositions are still valid for (`space`, `opts`, `violated`),
    /// clearing them otherwise.  Decomposition validity needs the
    /// *ordered violated endpoints* and the solver options to be
    /// unchanged, plus every `has_buffer` value region discovery actually
    /// read — checked by [`ChipSolveState::read_set_unchanged`] when the
    /// vectors differ, so a prune that only touched FFs far from this
    /// chip's regions (the common case, §III-A2 removes rarely-used
    /// buffers) does *not* invalidate it.  Bound values are compared
    /// later, per region, because they only affect the search outcome.
    pub(crate) fn revalidate(
        &mut self,
        sg: &SequentialGraph,
        space: &Arc<BufferSpace>,
        opts: &SolverOptions,
        violated: &[Violation],
    ) -> bool {
        let violated_ok = self.violated.len() == violated.len()
            && self
                .violated
                .iter()
                .zip(violated)
                .all(|(a, b)| a.a == b.a && a.b == b.b);
        let dims = (sg.n_ffs, sg.edges.len());
        // The dims check gates the read-set walk too: cached regions hold
        // FF indices that must not be resolved against a foreign graph.
        let dims_ok = self.graph_dims == Some(dims);
        let space_ok = dims_ok
            && self.space.as_ref().is_some_and(|old| {
                Arc::ptr_eq(old, space)
                    || old.has_buffer == space.has_buffer
                    || (violated_ok && self.read_set_unchanged(sg, old, space))
            });
        let valid = space_ok && violated_ok && self.opts.as_ref() == Some(opts);
        if !valid {
            self.rounds.clear();
            self.violated.clear();
            self.violated.extend_from_slice(violated);
            self.opts = Some(*opts);
        }
        // Repoint the identity either way so the next pass can fast-path.
        self.graph_dims = Some(dims);
        self.space = Some(Arc::clone(space));
        valid
    }

    /// Exact replay guard for a `has_buffer` delta: region discovery reads
    /// `has_buffer` at the violated endpoints, at every region FF and at
    /// every neighbour of a region FF (BFS growth, component expansion and
    /// the saturation probe all read through those, and nothing else).  If
    /// the old and new spaces agree on that whole read set — for every
    /// cached radius — the discovery trace is identical and the cached
    /// decompositions remain exact.
    fn read_set_unchanged(
        &self,
        sg: &SequentialGraph,
        old: &BufferSpace,
        new: &BufferSpace,
    ) -> bool {
        if old.has_buffer.len() != new.has_buffer.len() {
            return false;
        }
        let same = |ff: usize| old.has_buffer[ff] == new.has_buffer[ff];
        self.violated
            .iter()
            .all(|v| same(v.a as usize) && same(v.b as usize))
            && self.rounds.iter().all(|entry| {
                entry.regions.iter().all(|cr| {
                    cr.region
                        .ffs
                        .iter()
                        .all(|&ff| same(ff as usize) && sg.neighbors(ff as usize).all(same))
                })
            })
    }

    /// Looks up the decomposition cached for `radius`.
    pub(crate) fn round_index(&self, radius: usize) -> Option<usize> {
        self.rounds.iter().position(|e| e.radius == radius)
    }

    /// Inserts a freshly built decomposition for `radius`, evicting stale
    /// growth rounds (everything but the initial radius — the entry every
    /// pass starts from) when the table would exceed three entries.
    pub(crate) fn insert_round(
        &mut self,
        radius: usize,
        initial_radius: usize,
        regions: Vec<CachedRegion>,
    ) -> usize {
        if self.rounds.len() >= 3 {
            self.rounds
                .retain(|e| e.radius == initial_radius && e.radius != radius);
        }
        self.rounds.push(RadiusEntry { radius, regions });
        self.rounds.len() - 1
    }
}
