//! Experiment harness shared by the reproduction binaries.
//!
//! The binaries in this crate regenerate the paper's tables and figures
//! (see `DESIGN.md` §5 for the experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I (Nb, Ab, Y, Yi, T per circuit × period) |
//! | `fig5` | Fig. 5 histograms (scattered → window → concentrated) |
//! | `fig4_pruning` | Fig. 4 pruning statistics |
//! | `fig6_grouping` | Fig. 6 grouping statistics |
//! | `ablation` | DESIGN.md ablations A1–A4 |
//!
//! Run e.g. `cargo run -p psbi-bench --release --bin table1 -- --samples 10000 --all`.

use psbi_core::flow::{BufferInsertionFlow, FlowConfig, InsertionResult, TargetPeriod};
use psbi_netlist::bench_suite::BenchmarkSpec;

/// Simple `--key value` / `--flag` argument scanner.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments (after the binary name).
    pub fn from_env() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// Value of `--key <value>`, parsed.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        let flag = format!("--{key}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Presence of `--key`.
    pub fn has(&self, key: &str) -> bool {
        let flag = format!("--{key}");
        self.raw.iter().any(|a| a == &flag)
    }

    /// Comma-separated list value of `--key a,b,c`.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.get::<String>(key)
            .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Common experiment knobs parsed from the command line.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Insertion samples (`--samples`, default 1000; paper uses 10 000).
    pub samples: usize,
    /// Yield-evaluation samples (`--yield-samples`, default 4000).
    pub yield_samples: usize,
    /// Master seed (`--seed`, default 42).
    pub seed: u64,
    /// Worker threads (`--threads`, default all cores).
    pub threads: usize,
    /// Selected circuits (`--circuits s9234,s13207` or `--all`).
    pub circuits: Vec<BenchmarkSpec>,
}

impl ExperimentConfig {
    /// Parses the shared knobs; `default_circuits` is used when neither
    /// `--circuits` nor `--all` is given.
    pub fn parse(args: &Args, default_circuits: &[&str]) -> Self {
        let suite = psbi_netlist::bench_suite::paper_suite();
        let circuits: Vec<BenchmarkSpec> = if args.has("all") {
            suite
        } else if let Some(names) = args.list("circuits") {
            names
                .iter()
                .filter_map(|n| {
                    let found = psbi_netlist::bench_suite::by_name(n);
                    if found.is_none() {
                        eprintln!("warning: unknown circuit `{n}` skipped");
                    }
                    found
                })
                .collect()
        } else {
            default_circuits
                .iter()
                .filter_map(|n| psbi_netlist::bench_suite::by_name(n))
                .collect()
        };
        Self {
            samples: args.get("samples").unwrap_or(1000),
            yield_samples: args.get("yield-samples").unwrap_or(4000),
            seed: args.get("seed").unwrap_or(42),
            threads: args.get("threads").unwrap_or(0),
            circuits,
        }
    }

    /// The flow configuration for one circuit at `µT + k·σT`.
    pub fn flow_config(&self, sigma_factor: f64) -> FlowConfig {
        FlowConfig {
            samples: self.samples,
            yield_samples: self.yield_samples,
            calibration_samples: self.samples.max(1000),
            seed: self.seed,
            target: TargetPeriod::SigmaFactor(sigma_factor),
            threads: self.threads,
            ..FlowConfig::default()
        }
    }
}

/// Runs the full flow for one circuit at one target period.
pub fn run_cell(spec: &BenchmarkSpec, cfg: FlowConfig) -> InsertionResult {
    let circuit = spec.generate();
    BufferInsertionFlow::builder(&circuit, cfg)
        .build()
        .expect("generated benchmarks are valid")
        .run()
}

/// Formats one Table-I cell as `Nb Ab Y Yi T`.
pub fn format_cell(r: &InsertionResult) -> String {
    format!(
        "{:>4} {:>6.2} {:>6.2} {:>6.2} {:>8.2}",
        r.nb, r.ab, r.yield_with_buffers, r.improvement, r.runtime.total_s
    )
}

/// Renders a histogram as an ASCII bar chart (for the fig5 binary).
pub fn ascii_histogram(bins: &[(i64, u64)], width: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let max = bins.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (v, c) in bins {
        let bar = (*c as usize * width).div_ceil(max as usize);
        let _ = writeln!(out, "{v:>5} | {:<width$} {c}", "#".repeat(bar));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse() {
        let a = Args::from_vec(vec![
            "--samples".into(),
            "500".into(),
            "--all".into(),
            "--circuits".into(),
            "s9234, s13207".into(),
        ]);
        assert_eq!(a.get::<usize>("samples"), Some(500));
        assert!(a.has("all"));
        assert_eq!(
            a.list("circuits"),
            Some(vec!["s9234".to_string(), "s13207".to_string()])
        );
        assert_eq!(a.get::<usize>("missing"), None);
    }

    #[test]
    fn experiment_config_selects_circuits() {
        let a = Args::from_vec(vec!["--circuits".into(), "s9234".into()]);
        let cfg = ExperimentConfig::parse(&a, &["s13207"]);
        assert_eq!(cfg.circuits.len(), 1);
        assert_eq!(cfg.circuits[0].name, "s9234");
        let a = Args::from_vec(vec![]);
        let cfg = ExperimentConfig::parse(&a, &["s13207"]);
        assert_eq!(cfg.circuits[0].name, "s13207");
        let a = Args::from_vec(vec!["--all".into()]);
        let cfg = ExperimentConfig::parse(&a, &[]);
        assert_eq!(cfg.circuits.len(), 8);
    }

    #[test]
    fn ascii_histogram_renders() {
        let h = ascii_histogram(&[(0, 2), (1, 4)], 8);
        assert!(h.contains("0 |"));
        assert!(h.contains("####"));
    }
}
