//! The sequential (FF→FF) timing graph with canonical min/max path delays.
//!
//! Block-based SSTA propagates canonical arrival forms through every source
//! flip-flop's fanout cone — `add` along paths, Clark `max`/`min` at
//! reconvergence — yielding the `d̄ij`/`d̲ij` random variables of the paper's
//! constraints (1)–(2).  Path delays include the source FF's clock-to-Q.

use crate::cones::ConeSet;
use crate::graph::TimingGraph;
use psbi_variation::CanonicalForm;
use serde::{Deserialize, Serialize};

/// One sequential timing edge (a register-to-register constraint pair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqEdge {
    /// Source flip-flop (dense index) — launches the data.
    pub from: u32,
    /// Sink flip-flop (dense index) — captures the data.
    pub to: u32,
    /// Canonical maximum path delay `d̄ij` (includes clock-to-Q).
    pub max_delay: CanonicalForm,
    /// Canonical minimum path delay `d̲ij` (includes clock-to-Q).
    pub min_delay: CanonicalForm,
}

/// The sequential graph: edges plus per-FF setup/hold canonicals.
#[derive(Debug, Clone)]
pub struct SequentialGraph {
    /// Number of flip-flops.
    pub n_ffs: usize,
    /// All sequential edges.  The order is deterministic: grouped by source
    /// FF in cone-sink order (the gate-level sampler relies on this).
    pub edges: Vec<SeqEdge>,
    /// Canonical setup time per FF (dense index).
    pub setup: Vec<CanonicalForm>,
    /// Canonical hold time per FF (dense index).
    pub hold: Vec<CanonicalForm>,
    out_edges: Vec<Vec<u32>>,
    in_edges: Vec<Vec<u32>>,
    cones: ConeSet,
}

impl SequentialGraph {
    /// Builds a sequential graph from explicit parts — for tests, for
    /// benchmark harnesses, and for users who bring their own FF-level
    /// timing data instead of a gate-level netlist.
    ///
    /// The resulting graph has no cones, so only the canonical edge sampler
    /// can be used with it (not the gate-level one).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a FF `>= n_ffs` or the setup/hold
    /// vectors have the wrong length.
    pub fn from_parts(
        n_ffs: usize,
        edges: Vec<SeqEdge>,
        setup: Vec<CanonicalForm>,
        hold: Vec<CanonicalForm>,
    ) -> Self {
        assert_eq!(setup.len(), n_ffs, "one setup form per FF");
        assert_eq!(hold.len(), n_ffs, "one hold form per FF");
        let mut out_edges = vec![Vec::new(); n_ffs];
        let mut in_edges = vec![Vec::new(); n_ffs];
        for (e, edge) in edges.iter().enumerate() {
            assert!(
                (edge.from as usize) < n_ffs && (edge.to as usize) < n_ffs,
                "edge endpoint out of range"
            );
            out_edges[edge.from as usize].push(e as u32);
            in_edges[edge.to as usize].push(e as u32);
        }
        Self {
            n_ffs,
            edges,
            setup,
            hold,
            out_edges,
            in_edges,
            cones: ConeSet::empty(),
        }
    }

    /// Extracts the sequential graph by SSTA over the timing graph's cones.
    pub fn extract(tg: &TimingGraph<'_>) -> Self {
        let cones = ConeSet::extract(tg);
        let circuit = tg.circuit;
        let n_nodes = circuit.len();
        let n_ffs = circuit.num_ffs();

        let mut edges: Vec<SeqEdge> = Vec::new();
        let mut arr_max: Vec<CanonicalForm> = vec![CanonicalForm::constant(0.0); n_nodes];
        let mut arr_min: Vec<CanonicalForm> = vec![CanonicalForm::constant(0.0); n_nodes];
        let mut mark = vec![u32::MAX; n_nodes];

        for i in 0..n_ffs {
            let ff_node = circuit.ff_ids()[i];
            let stamp = i as u32;
            mark[ff_node.index()] = stamp;
            arr_max[ff_node.index()] = *tg.clk_to_q(i);
            arr_min[ff_node.index()] = *tg.clk_to_q(i);
            let cone = cones.cone(i);
            for &g in &cone.gates {
                let mut mx: Option<CanonicalForm> = None;
                let mut mn: Option<CanonicalForm> = None;
                for &f in circuit.fanins(g) {
                    if mark[f.index()] == stamp {
                        let fm = arr_max[f.index()];
                        let fn_ = arr_min[f.index()];
                        mx = Some(match mx {
                            None => fm,
                            Some(m) => m.max(&fm),
                        });
                        mn = Some(match mn {
                            None => fn_,
                            Some(m) => m.min(&fn_),
                        });
                    }
                }
                let (mx, mn) = (
                    mx.expect("cone gate has a reachable fanin"),
                    mn.expect("cone gate has a reachable fanin"),
                );
                let d = tg.gate_delay(g);
                arr_max[g.index()] = mx.add(d);
                arr_min[g.index()] = mn.add(d);
                mark[g.index()] = stamp;
            }
            for &(j, driver) in &cone.sinks {
                debug_assert_eq!(mark[driver.index()], stamp);
                edges.push(SeqEdge {
                    from: i as u32,
                    to: j as u32,
                    max_delay: arr_max[driver.index()],
                    min_delay: arr_min[driver.index()],
                });
            }
        }

        let mut out_edges = vec![Vec::new(); n_ffs];
        let mut in_edges = vec![Vec::new(); n_ffs];
        for (e, edge) in edges.iter().enumerate() {
            out_edges[edge.from as usize].push(e as u32);
            in_edges[edge.to as usize].push(e as u32);
        }

        Self {
            n_ffs,
            edges,
            setup: (0..n_ffs).map(|i| *tg.setup(i)).collect(),
            hold: (0..n_ffs).map(|i| *tg.hold(i)).collect(),
            out_edges,
            in_edges,
            cones,
        }
    }

    /// Edge ids launched by FF `i`.
    #[inline]
    pub fn out_edges(&self, i: usize) -> &[u32] {
        &self.out_edges[i]
    }

    /// Edge ids captured by FF `i`.
    #[inline]
    pub fn in_edges(&self, i: usize) -> &[u32] {
        &self.in_edges[i]
    }

    /// The cones this graph was extracted from (the gate-level sampler
    /// needs them to stay consistent with the edge order).
    #[inline]
    pub fn cones(&self) -> &ConeSet {
        &self.cones
    }

    /// FF indices adjacent to `i` in the undirected sequential graph.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.out_edges[i]
            .iter()
            .map(move |&e| self.edges[e as usize].to as usize)
            .chain(
                self.in_edges[i]
                    .iter()
                    .map(move |&e| self.edges[e as usize].from as usize),
            )
    }

    /// Mean over all edges of the nominal maximum path delay — a measure of
    /// the typical stage delay used to scale skews and clock periods.
    pub fn mean_stage_delay(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.max_delay.mean()).sum::<f64>() / self.edges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingGraph;
    use psbi_liberty::Library;
    use psbi_netlist::bench_format::{parse_bench, EXAMPLE_BENCH};
    use psbi_netlist::bench_suite;
    use psbi_variation::VariationModel;

    fn seq_of(circuit: &psbi_netlist::Circuit) -> SequentialGraph {
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(circuit, &lib, &model).unwrap();
        SequentialGraph::extract(&tg)
    }

    #[test]
    fn example_edges() {
        let c = parse_bench(EXAMPLE_BENCH).unwrap();
        let sg = seq_of(&c);
        assert_eq!(sg.n_ffs, 3);
        // Edges: F0->F0 (N4), F0->F1 (N6), F0->F2 (N7), F1->F0 (N4 via XOR),
        // F1->F1 (N6 via N5), F1->F2 (N7 via N5), F2->F2 (N7).
        assert_eq!(sg.edges.len(), 7);
        let has = |a: &str, b: &str| {
            let ai = c.ff_index(c.by_name(a).unwrap()).unwrap() as u32;
            let bi = c.ff_index(c.by_name(b).unwrap()).unwrap() as u32;
            sg.edges.iter().any(|e| e.from == ai && e.to == bi)
        };
        assert!(has("F0", "F0"));
        assert!(has("F0", "F1"));
        assert!(has("F0", "F2"));
        assert!(has("F1", "F0"));
        assert!(has("F1", "F1"));
        assert!(has("F1", "F2"));
        assert!(has("F2", "F2"));
        assert!(!has("F2", "F0"));
    }

    #[test]
    fn max_dominates_min() {
        let c = bench_suite::small_demo(7);
        let sg = seq_of(&c);
        for e in &sg.edges {
            assert!(
                e.max_delay.mean() >= e.min_delay.mean() - 1e-9,
                "edge {}->{}: max {} < min {}",
                e.from,
                e.to,
                e.max_delay.mean(),
                e.min_delay.mean()
            );
        }
    }

    #[test]
    fn delays_include_clk_to_q() {
        let c = parse_bench(EXAMPLE_BENCH).unwrap();
        let lib = Library::industry_like();
        let model = VariationModel::paper_defaults();
        let tg = TimingGraph::build(&c, &lib, &model).unwrap();
        let sg = SequentialGraph::extract(&tg);
        let clkq_min = (0..3)
            .map(|i| tg.clk_to_q(i).mean())
            .fold(f64::MAX, f64::min);
        for e in &sg.edges {
            assert!(e.min_delay.mean() >= clkq_min - 1e-9);
        }
    }

    #[test]
    fn adjacency_lists_match_edges() {
        let c = bench_suite::tiny_demo(2);
        let sg = seq_of(&c);
        for (e, edge) in sg.edges.iter().enumerate() {
            assert!(sg.out_edges(edge.from as usize).contains(&(e as u32)));
            assert!(sg.in_edges(edge.to as usize).contains(&(e as u32)));
        }
        let total_out: usize = (0..sg.n_ffs).map(|i| sg.out_edges(i).len()).sum();
        assert_eq!(total_out, sg.edges.len());
    }

    #[test]
    fn neighbors_are_symmetric() {
        let c = bench_suite::tiny_demo(4);
        let sg = seq_of(&c);
        for i in 0..sg.n_ffs {
            for j in sg.neighbors(i) {
                assert!(sg.neighbors(j).any(|k| k == i), "{i} <-> {j}");
            }
        }
    }

    #[test]
    fn stage_delay_is_positive() {
        let c = bench_suite::tiny_demo(6);
        let sg = seq_of(&c);
        assert!(sg.mean_stage_delay() > 0.0);
    }
}
