//! Vendored, offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! so they are ready for a real serialisation backend, but the build
//! environment has no crates.io access.  This shim keeps the annotations
//! compiling: the traits are blanket-implemented markers and the derive
//! macros expand to nothing.  Swapping in upstream `serde` later is a
//! Cargo.toml-only change; no source edits needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
