//! Vendored, offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the PSBI workspace
//! ships this minimal implementation of the `rand` API surface it uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen_range` / `gen_bool`) and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64.  It is *not*
//! the upstream ChaCha12 generator — streams differ from upstream `rand`,
//! but every consumer in this workspace only relies on determinism and
//! statistical quality, both of which xoshiro256** provides.  The
//! generator is fully deterministic for a given seed on every platform.

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator interface (upstream-compatible subset).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (upstream-compatible subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, n)` via Lemire's multiply-shift with rejection.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling on the high product half keeps the draw unbiased.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(n as u128);
    let mut lo = m as u64;
    if lo < n {
        let t = n.wrapping_neg() % n;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $ty)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $ty)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 53-bit mantissa draw in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + (hi - lo) * unit;
        if v < hi {
            v
        } else {
            // Guard against rounding up to `hi` for tiny spans: step to
            // the next float toward -∞ (correct for any sign of `hi`,
            // unlike bit-pattern decrement).
            hi.next_down()
        }
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step, used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bundled generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman/Vigna).
    ///
    /// Deterministic for a given seed on every platform; passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_half_open_negative_ranges_stay_in_bounds() {
        // Regression: the rounding guard must step toward -∞ for any sign
        // of `hi` (a bit-pattern decrement is wrong for hi <= 0).
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50_000 {
            let a = rng.gen_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&a), "{a}");
            let b = rng.gen_range(-1.0f64..0.0);
            assert!(b.is_finite() && (-1.0..0.0).contains(&b), "{b}");
        }
        // Degenerate span: lo is the only representable value below hi.
        let hi = -1.0f64;
        let lo = hi.next_down();
        for _ in 0..100 {
            let v = rng.gen_range(lo..hi);
            assert_eq!(v, lo);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn mean_and_variance_of_unit_draws() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = rng.gen_range(0.0f64..1.0);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }
}
