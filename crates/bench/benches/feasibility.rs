//! P1: SPFA difference-constraint feasibility — the yield evaluator's hot
//! path (one call per Monte-Carlo chip).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psbi_timing::feasibility::{Arc, DiffSolver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random feasible-ish chain system of `n` variables.
fn chain_system(n: usize, seed: u64) -> (Vec<Arc>, Vec<(i64, i64)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arcs = Vec::new();
    for i in 0..(n - 1) as u32 {
        arcs.push(Arc::new(i, i + 1, rng.gen_range(-2..8)));
        arcs.push(Arc::new(i + 1, i, rng.gen_range(0..8)));
    }
    // A few long-range constraints.
    for _ in 0..n / 4 {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            arcs.push(Arc::new(a, b, rng.gen_range(0..12)));
        }
    }
    (arcs, vec![(-20, 20); n])
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("spfa_feasibility");
    for n in [32usize, 256, 2048] {
        let (arcs, bounds) = chain_system(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut solver = DiffSolver::new();
            b.iter(|| solver.solve_bounded(n, &arcs, &bounds).is_feasible());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
