//! The per-sample buffer-minimisation solver.
//!
//! For one Monte-Carlo sample the paper solves two ILPs (eqs. (8)–(13) and
//! (14)–(17)): first minimise the number of adjusted buffers `Σ c_i`, then
//! — with that count as a budget — minimise the total tuning magnitude.
//! This module solves the same problems exactly but exploits their
//! structure:
//!
//! * **Localisation.** Only constraints violated at `x = 0` force tunings.
//!   In any *minimal* solution, every connected component of the tuned set
//!   (in the constraint graph) touches a violated constraint — otherwise
//!   zeroing that component keeps feasibility and is smaller.  A component
//!   of `m` tuned buffers therefore lies within `m` hops of a violated
//!   endpoint, so solving inside a radius-`R` region is globally optimal as
//!   soon as the optimum count is `≤ R`; the region is grown until that
//!   holds (or it saturates its connected component, proving
//!   infeasibility).
//! * **Support-set branch and bound.** Inside a region the search branches
//!   on "buffer is adjusted / not adjusted" ([`search`] module).
//!   Feasibility of a candidate support is a bounded difference-constraint
//!   system — [`psbi_timing::DiffSolver`] decides it in near-linear time —
//!   and a matching over still-uncovered violated constraints gives a
//!   vertex-cover lower bound.  Tie-breaking in the search is pinned (see
//!   `search`), so the returned support is a pure function of the region
//!   system — the property incremental replay relies on.
//! * **Value concentration.** With the budget fixed, `min Σ|x_i − a_i|` is
//!   solved as a MILP ([`psbi_milp`]) with indicator constraints — the
//!   exact formulation of the paper's eqs. (14)–(21) — on the small region,
//!   warm-started with the search's known-feasible witness (identically in
//!   cold and incremental runs, so the warm start is result-neutral
//!   between the two modes).
//!
//! # Incremental cross-pass state
//!
//! Region *discovery* (violation collection, BFS region growth, constraint
//! attachment) is split from region *solving* so a [`ChipSolveState`] can
//! carry decompositions, optimal support sets and warm witnesses from one
//! pass to the next — and, through the flow's state arena, across adjacent
//! targets of a fleet sweep.  Every reuse is guarded by an exact value
//! comparison of the inputs the cached artefact was derived from (the
//! invalidation keys are tabulated in [`state`]'s docs); a mismatch falls
//! back to the cold path, so results are bit-identical with the cache on,
//! off (`PSBI_NO_INCREMENTAL=1`), or partially hitting.
//!
//! The generic big-M MILP formulation of the whole problem is also
//! available ([`SampleSolver::solve_reference_milp`]) and is used by tests
//! to cross-validate the specialised path.

use psbi_milp::{Model, Op, Status};
use psbi_timing::feasibility::{Arc as FeasArc, DiffSolver};
use psbi_timing::{
    ConstraintKind, ConstraintsView, IntegerConstraints, SequentialGraph, Violation,
};
use std::sync::Arc;

mod memo;
mod search;
mod state;
#[cfg(test)]
mod tests;

use memo::MemoKey;
pub use memo::RegionMemo;
use search::{run_support_search, SearchPhase, SupportSearch};
use state::{CachedOutcome, CachedRegion};
pub use state::{ChipSolveState, PassDiagnostics};

/// One solver stage's observability guards: a trace span plus a
/// wall-clock histogram timer under the same `solve.stage.*` name.  Both
/// are single-relaxed-load no-ops while disarmed — the solve reads no
/// clock at all unless the obs registry or trace sink is armed.
struct StageObs {
    _span: psbi_obs::Span,
    _timer: psbi_obs::metrics::Timer,
}

#[inline]
fn stage_obs(name: &'static str) -> StageObs {
    StageObs {
        _span: psbi_obs::Span::enter(name),
        _timer: psbi_obs::metrics::timer(name),
    }
}

/// Which buffers exist and their tuning windows (in steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSpace {
    /// Per FF: does it (still) have a tuning buffer?
    pub has_buffer: Vec<bool>,
    /// Per FF: inclusive tuning bounds in steps (only meaningful where
    /// `has_buffer`).  Must contain 0 so that "not adjusted" is feasible.
    pub bounds: Vec<(i64, i64)>,
}

impl BufferSpace {
    /// Every FF gets a buffer with the paper's step-1 floating window: the
    /// window of width `steps` must contain both 0 and the tuning value, so
    /// the value ranges over `[-steps, steps]`.
    pub fn floating(n_ffs: usize, steps: i64) -> Self {
        Self {
            has_buffer: vec![true; n_ffs],
            bounds: vec![(-steps, steps); n_ffs],
        }
    }

    /// Number of FFs with buffers.
    pub fn num_buffers(&self) -> usize {
        self.has_buffer.iter().filter(|b| **b).count()
    }

    /// Validates that all active windows contain zero.
    ///
    /// # Errors
    ///
    /// Returns the index of the first offending FF.
    pub fn validate(&self) -> Result<(), usize> {
        for (i, has) in self.has_buffer.iter().enumerate() {
            if *has {
                let (lo, hi) = self.bounds[i];
                if lo > 0 || hi < 0 {
                    return Err(i);
                }
            }
        }
        Ok(())
    }
}

/// Secondary objective after the buffer count is minimised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PushObjective<'a> {
    /// Stop after minimising the count (paper §III-A1 / §III-B1).
    None,
    /// Minimise `Σ|x_i|` (paper §III-A3).
    ToZero,
    /// Minimise `Σ|x_i − a_i|` with per-FF targets (paper §III-B2).
    ToTargets(&'a [f64]),
}

/// Tunable solver limits.
///
/// `Eq`/`Hash` because the options are part of every region-memo key:
/// two region systems solved under different limits may legitimately
/// return different (fallback) outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SolverOptions {
    /// Initial region radius (hops around violated constraints).
    pub region_radius: usize,
    /// Hard cap on FFs per region (beyond it results are marked inexact).
    pub region_cap: usize,
    /// Maximum branch-and-bound nodes per region before greedy fallback.
    pub bb_node_cap: usize,
    /// Regions larger than this solve the concentration MILP on the fixed
    /// optimal support instead of branching over supports.
    pub exact_push_cap: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            region_radius: 2,
            region_cap: 48,
            bb_node_cap: 3_000,
            exact_push_cap: 14,
        }
    }
}

/// Solution of one sample.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SampleResult {
    /// Can this chip be configured at all (with the given buffer space)?
    pub feasible: bool,
    /// Whether the result is proven optimal (greedy fallbacks clear this).
    pub exact: bool,
    /// Nonzero tunings `(ff_index, steps)`.
    pub tunings: Vec<(u32, i64)>,
}

impl SampleResult {
    /// Number of adjusted buffers (the paper's `n_k`).
    pub fn count(&self) -> usize {
        self.tunings.len()
    }
}

/// Normalised constraint `k(a) − k(b) ≤ bound` with FF endpoints.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegCons {
    a: u32,
    b: u32,
    bound: i64,
}

/// Reusable per-sample solver (one per worker thread).
///
/// Every workspace the per-chip pipeline needs — the SPFA solver, region
/// scratch, the branch-and-bound's per-node buffers and the saturation
/// screen's arc/bound arrays — lives in this struct and is reused across
/// chips, so a steady-state pass performs no per-chip allocation outside
/// the result vectors themselves.  Cross-*pass* state, by contrast, lives
/// in per-chip [`ChipSolveState`]s owned by the caller: workspaces are
/// checked out racily per chunk, so anything keyed to a chip identity
/// must not live here.
#[derive(Debug, Default)]
pub struct SampleSolver {
    diff: DiffSolver,
    /// Scratch: per-FF region id (or `NONE`).
    region_of: Vec<u32>,
    /// Scratch: per-FF variable slot within a support check.
    var_of: Vec<u32>,
    /// Scratch: visited stamp for BFS.
    dist: Vec<u32>,
    /// Scratch: violated constraints of the current chip.
    violated: Vec<Violation>,
    /// Scratch: per-edge visit stamp for region-constraint attachment.
    edge_stamp: Vec<u32>,
    /// Current epoch for `edge_stamp`.
    epoch: u32,
    /// Scratch for the whole-chip saturation screen.
    fx_vars: Vec<u32>,
    fx_arcs: Vec<FeasArc>,
    fx_bounds: Vec<(i64, i64)>,
    /// Per-node scratch reused by every support-search in every region.
    ss_vars: Vec<u32>,
    ss_slot: Vec<u32>,
    ss_arcs: Vec<FeasArc>,
    ss_bounds: Vec<(i64, i64)>,
}

const NONE: u32 = u32::MAX;

/// Per-round accumulator of the region growth loop.
struct RoundAcc {
    tunings: Vec<(u32, i64)>,
    exact: bool,
    need_radius: usize,
}

impl SampleSolver {
    /// Creates a solver with empty workspaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves one sample: minimum buffer count, then (optionally) value
    /// concentration.
    pub fn solve(
        &mut self,
        sg: &SequentialGraph,
        ic: &IntegerConstraints,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> SampleResult {
        self.solve_view(sg, ic.as_view(), space, push, opts)
    }

    /// Solves one sample from a borrowed constraint view (an
    /// [`IntegerConstraints`] or one row of a
    /// [`psbi_timing::ConstraintBatch`]), without cross-pass state.
    pub fn solve_view(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> SampleResult {
        let mut diag = PassDiagnostics::default();
        self.solve_inner(sg, ic, space, push, opts, None, None, &mut diag)
    }

    /// As [`SampleSolver::solve_view`], accumulating the *workload*
    /// counters (`regions_total`, `regions_saturated`) into `diag`.  The
    /// reuse counters stay zero — there is no cross-pass state here — but
    /// `region_cap` saturation remains observable even with the
    /// incremental cache disabled.
    pub fn solve_view_with_diag(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        diag: &mut PassDiagnostics,
    ) -> SampleResult {
        self.solve_inner(sg, ic, space, push, opts, None, None, diag)
    }

    /// Solves one sample with persistent per-chip state: cached region
    /// decompositions and search outcomes from earlier passes are replayed
    /// when their invalidation keys still match (see [`state`]), and
    /// refreshed otherwise.  The result is **bit-identical** to
    /// [`SampleSolver::solve_view`] on the same inputs for *any* prior
    /// content of `solve_state` — reuse is a verified fast path, never a
    /// semantic change.  Cache-efficacy counters accumulate into `diag`.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_view_cached(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &Arc<BufferSpace>,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        solve_state: &mut ChipSolveState,
        diag: &mut PassDiagnostics,
    ) -> SampleResult {
        self.solve_inner(
            sg,
            ic,
            space,
            push,
            opts,
            Some((space, solve_state)),
            None,
            diag,
        )
    }

    /// The full shared-state entry point: per-chip incremental state
    /// (optional) **plus** a flow-level cross-chip [`RegionMemo`]
    /// (optional).  Regions that cannot replay from the chip's own
    /// history are looked up in `memo` by the exact value of their
    /// saturation-normalised system and searched (then published) on a
    /// miss.  Like every other cache tier, the memo is a verified fast
    /// path: the result is bit-identical to [`SampleSolver::solve_view`]
    /// for any memo/state content and any interleaving of publishers.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_view_memo(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &Arc<BufferSpace>,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        memo: Option<&RegionMemo>,
        solve_state: Option<&mut ChipSolveState>,
        diag: &mut PassDiagnostics,
    ) -> SampleResult {
        let chip = solve_state.map(|st| (space, st));
        self.solve_inner(sg, ic, space, push, opts, chip, memo, diag)
    }

    /// Shared entry: violation collection, chip-level cache revalidation,
    /// then the solve pipeline.
    #[allow(clippy::too_many_arguments)]
    fn solve_inner(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        cache: Option<(&Arc<BufferSpace>, &mut ChipSolveState)>,
        memo: Option<&RegionMemo>,
        diag: &mut PassDiagnostics,
    ) -> SampleResult {
        let n = sg.n_ffs;
        debug_assert_eq!(space.has_buffer.len(), n);

        // 1. Violated constraints at x = 0 — the chip's fingerprint
        // (reused scratch).
        let mut violated = std::mem::take(&mut self.violated);
        {
            let _obs = stage_obs("solve.stage.discovery");
            ic.collect_violations(sg, &mut violated);
        }
        // Chip-level revalidation clears any cached decomposition whose
        // invalidation keys no longer match; everything that survives is
        // safe to replay below.
        let state = cache.map(|(space_arc, st)| {
            st.revalidate(sg, space_arc, opts, &violated);
            st
        });
        let result =
            self.solve_with_violated(sg, ic, space, push, opts, &violated, state, memo, diag);
        self.violated = violated;
        result
    }

    /// The solve pipeline after violation collection (split out so the
    /// violation scratch can be taken and restored around it).
    #[allow(clippy::too_many_arguments)]
    fn solve_with_violated(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        violated: &[Violation],
        mut state: Option<&mut ChipSolveState>,
        memo: Option<&RegionMemo>,
        diag: &mut PassDiagnostics,
    ) -> SampleResult {
        if violated.is_empty() {
            return SampleResult {
                feasible: true,
                exact: true,
                tunings: Vec::new(),
            };
        }
        // A violated constraint between two bufferless FFs is unfixable.
        for v in violated {
            if !space.has_buffer[v.a as usize] && !space.has_buffer[v.b as usize] {
                return SampleResult {
                    feasible: false,
                    exact: true,
                    tunings: Vec::new(),
                };
            }
        }

        // 2. Infeasibility screen at full saturation: if the chip cannot be
        // configured even with *every* buffer free, no region growth can
        // help (a negative cycle stays negative), so decide this once with
        // a single SPFA instead of growing regions toward it.  The
        // carried per-chip witness seeds the solver's warm slot; it is
        // fully re-validated there, so importing never changes the verdict.
        let fixable = {
            let _obs = stage_obs("solve.stage.screen");
            if let Some(st) = state.as_deref_mut() {
                if st.fixable_ok {
                    self.diff.import_witness(&st.fixable_witness);
                }
            }
            let fixable = self.chip_fixable(sg, ic, space);
            if let Some(st) = state.as_deref_mut() {
                if fixable {
                    if let Some(w) = self.diff.export_witness() {
                        st.fixable_witness.clear();
                        st.fixable_witness.extend_from_slice(w);
                        st.fixable_ok = true;
                    }
                }
            }
            fixable
        };
        if !fixable {
            return SampleResult {
                feasible: false,
                exact: true,
                tunings: Vec::new(),
            };
        }

        // 3. Region growth: solve at the initial radius, then — if some
        // region's optimal count exceeds the radius — once more at
        // radius = count, which provably contains a global optimum (any
        // better solution's components span fewer hops).  Two rounds
        // suffice; a third guards the inexact (node-capped) case.
        let mut radius = opts.region_radius;
        for round in 0..3 {
            let mut acc = RoundAcc {
                tunings: Vec::new(),
                exact: true,
                need_radius: radius,
            };
            match state.as_deref_mut() {
                Some(st) => {
                    self.solve_round_cached(
                        sg, ic, space, push, opts, violated, radius, st, memo, diag, &mut acc,
                    );
                }
                None => {
                    self.solve_round_cold(
                        sg, ic, space, push, opts, violated, radius, memo, diag, &mut acc,
                    );
                }
            }
            if acc.need_radius == radius || round == 2 {
                return SampleResult {
                    feasible: true,
                    exact: acc.exact && acc.need_radius == radius,
                    tunings: acc.tunings,
                };
            }
            radius = acc.need_radius;
        }
        unreachable!("growth loop returns within three rounds");
    }

    /// Resolves one region's outcome through the cache hierarchy below
    /// the per-chip tier: cross-chip memo lookup (exact key equality)
    /// first, fresh search + publish on a miss.  Search time lands in the
    /// `solve.stage.search` obs histogram either way (a hit contributes
    /// ~0); the `solve.memo.{hit,miss,publish}` counters are
    /// schedule-dependent like [`PassDiagnostics::cross_chip_hits`].
    fn memo_or_search(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        space: &BufferSpace,
        opts: &SolverOptions,
        memo: Option<&RegionMemo>,
        diag: &mut PassDiagnostics,
    ) -> Arc<CachedOutcome> {
        let _obs = stage_obs("solve.stage.search");
        match memo {
            Some(memo) => {
                let key = MemoKey::capture(region, cons, space, opts);
                match memo.lookup(&key) {
                    Some(hit) => {
                        diag.cross_chip_hits += 1;
                        psbi_obs::metrics::counter_add("solve.memo.hit", 1);
                        if psbi_fault::failpoint!("memo.replay.corrupt") {
                            // Injected cache corruption: a claimed-feasible
                            // outcome whose support is empty.  Downstream
                            // this yields a chip "fixed" with no tunings —
                            // exactly the class of silent wrong answer the
                            // independent verifier must flag.
                            Arc::new(CachedOutcome::Feasible {
                                count: 0,
                                support: Vec::new(),
                                witness: Vec::new(),
                                exact: true,
                            })
                        } else {
                            hit
                        }
                    }
                    None => {
                        psbi_obs::metrics::counter_add("solve.memo.miss", 1);
                        let fresh = Arc::new(self.search_region(cons, space, region, opts));
                        memo.publish(key, Arc::clone(&fresh));
                        psbi_obs::metrics::counter_add("solve.memo.publish", 1);
                        fresh
                    }
                }
            }
            None => Arc::new(self.search_region(cons, space, region, opts)),
        }
    }

    /// One growth round without cross-pass state: build the decomposition,
    /// search every region (through the cross-chip memo when one is
    /// active), apply the push objective.
    #[allow(clippy::too_many_arguments)]
    fn solve_round_cold(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        violated: &[Violation],
        radius: usize,
        memo: Option<&RegionMemo>,
        diag: &mut PassDiagnostics,
        acc: &mut RoundAcc,
    ) {
        let regions = {
            let _obs = stage_obs("solve.stage.discovery");
            self.collect_regions(sg, space, violated, radius)
        };
        for region in &regions {
            diag.regions_total += 1;
            if region.ffs.len() > opts.region_cap {
                diag.regions_saturated += 1;
            }
            let cons = materialize_cons(region, ic, space);
            let outcome = self.memo_or_search(region, &cons, space, opts, memo, diag);
            self.apply_outcome(region, &cons, &outcome, space, push, opts, radius, acc);
        }
    }

    /// One growth round with cross-pass state: replay the decomposition
    /// and any region outcome whose invalidation keys still match, fall
    /// back to the cross-chip memo for the rest, search (and re-record,
    /// and publish) what misses both tiers.
    #[allow(clippy::too_many_arguments)]
    fn solve_round_cached(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        violated: &[Violation],
        radius: usize,
        st: &mut ChipSolveState,
        memo: Option<&RegionMemo>,
        diag: &mut PassDiagnostics,
        acc: &mut RoundAcc,
    ) {
        let entry = match st.round_index(radius) {
            Some(i) => {
                diag.regions_reused += st.rounds[i].regions.len() as u64;
                i
            }
            None => {
                let regions = {
                    let _obs = stage_obs("solve.stage.discovery");
                    self.collect_regions(sg, space, violated, radius)
                };
                let cached = regions.into_iter().map(CachedRegion::new).collect();
                st.insert_round(radius, opts.region_radius, cached)
            }
        };
        for cr in st.rounds[entry].regions.iter_mut() {
            diag.regions_total += 1;
            if cr.region.ffs.len() > opts.region_cap {
                diag.regions_saturated += 1;
            }
            let cons = materialize_cons(&cr.region, ic, space);
            if cr.outcome_replayable(&cons, space) {
                // Count only replayed *supports*: an Infeasible replay
                // skips the search too, but there is no support set in it.
                if matches!(cr.outcome.as_deref(), Some(CachedOutcome::Feasible { .. })) {
                    diag.supports_rehit += 1;
                }
            } else {
                let outcome = self.memo_or_search(&cr.region, &cons, space, opts, memo, diag);
                cr.record(&cons, space, outcome);
            }
            let outcome = cr.outcome.as_ref().expect("recorded above");
            // `cr` borrows the state arena slot, `self` owns the solver
            // scratch — disjoint, so the push objective can run in place.
            self.apply_outcome(&cr.region, &cons, outcome, space, push, opts, radius, acc);
        }
    }

    /// Applies one region's search outcome to the round accumulator:
    /// growth bookkeeping plus the pass's push objective.
    #[allow(clippy::too_many_arguments)]
    fn apply_outcome(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        outcome: &CachedOutcome,
        space: &BufferSpace,
        push: PushObjective<'_>,
        opts: &SolverOptions,
        radius: usize,
        acc: &mut RoundAcc,
    ) {
        match outcome {
            CachedOutcome::Feasible {
                count,
                support,
                witness,
                exact,
            } => {
                if *count > radius && !region.saturated {
                    acc.need_radius = acc.need_radius.max(*count);
                }
                let tunings = {
                    let _obs = stage_obs("solve.stage.milp");
                    self.finish_region(region, cons, space, *count, support, witness, push, opts)
                };
                acc.tunings.extend(tunings);
                acc.exact &= exact;
            }
            CachedOutcome::Infeasible => {
                // The chip as a whole is fixable (screened above); a
                // region-local infeasibility means the region is too
                // small — grow it.
                acc.need_radius = acc.need_radius.max(radius * 2 + 1);
                acc.exact = false;
            }
        }
    }

    /// One SPFA over the whole circuit with every buffer free: can this
    /// chip be configured at all?
    ///
    /// Uses the warm-started solver: the witness carried for this chip
    /// (incremental mode) or left by the previous chip (workspace reuse)
    /// usually still fits, in which case this is a single `O(edges)`
    /// validation sweep with no graph build at all.
    fn chip_fixable(
        &mut self,
        sg: &SequentialGraph,
        ic: ConstraintsView<'_>,
        space: &BufferSpace,
    ) -> bool {
        let n = sg.n_ffs;
        self.var_of.clear();
        self.var_of.resize(n, NONE);
        let mut vars = std::mem::take(&mut self.fx_vars);
        let mut arcs = std::mem::take(&mut self.fx_arcs);
        let mut bounds = std::mem::take(&mut self.fx_bounds);
        vars.clear();
        arcs.clear();
        bounds.clear();
        for ff in 0..n {
            if space.has_buffer[ff] {
                self.var_of[ff] = vars.len() as u32;
                vars.push(ff as u32);
            }
        }
        let root = vars.len() as u32;
        let resolve = |ff: u32, var_of: &[u32]| -> u32 {
            let v = var_of[ff as usize];
            if v == NONE {
                root
            } else {
                v
            }
        };
        // Same saturation normalisation as [`materialize_cons`]: with
        // `k(ff)` confined to its window (0 where bufferless), a bound at
        // or above `hi(from) − lo(to)` can never bind, so the arc is
        // elided — the verdict is unchanged and the SPFA graph shrinks to
        // the near-critical core.  A root–root cap is 0, so an unfixable
        // bufferless pair still trips the `bound < cap` test.
        let win = |ff: u32| -> (i64, i64) {
            if space.has_buffer[ff as usize] {
                space.bounds[ff as usize]
            } else {
                (0, 0)
            }
        };
        let mut fixable = true;
        for (e, edge) in sg.edges.iter().enumerate() {
            let vf = resolve(edge.from, &self.var_of);
            let vt = resolve(edge.to, &self.var_of);
            let (lo_f, hi_f) = win(edge.from);
            let (lo_t, hi_t) = win(edge.to);
            // Setup: k_from − k_to ≤ sb → arc to→from.
            let sb = ic.setup_bound[e];
            if sb < hi_f - lo_t {
                if vf == root && vt == root {
                    fixable = false; // cap is 0, so sb < 0: dead pair
                    break;
                }
                arcs.push(FeasArc::new(vt, vf, sb));
            }
            let hb = ic.hold_bound[e];
            if hb < hi_t - lo_f {
                if vf == root && vt == root {
                    fixable = false;
                    break;
                }
                arcs.push(FeasArc::new(vf, vt, hb));
            }
        }
        if fixable {
            bounds.extend(vars.iter().map(|&ff| space.bounds[ff as usize]));
            fixable = self.diff.feasible_bounded_warm(vars.len(), &arcs, &bounds);
        }
        self.fx_vars = vars;
        self.fx_arcs = arcs;
        self.fx_bounds = bounds;
        fixable
    }

    /// Builds regions: buffered FFs within `radius` hops of a violated
    /// constraint endpoint, split into connected components.
    ///
    /// This is the region-*discovery* half of the solve — a pure function
    /// of (`has_buffer`, ordered violated endpoints, `radius`, graph), the
    /// exact triple the decomposition cache keys on.
    fn collect_regions(
        &mut self,
        sg: &SequentialGraph,
        space: &BufferSpace,
        violated: &[Violation],
        radius: usize,
    ) -> Vec<Region> {
        let n = sg.n_ffs;
        self.dist.clear();
        self.dist.resize(n, NONE);
        let mut frontier: Vec<u32> = Vec::new();
        for v in violated {
            for ff in [v.a, v.b] {
                if space.has_buffer[ff as usize] && self.dist[ff as usize] == NONE {
                    self.dist[ff as usize] = 0;
                    frontier.push(ff);
                }
            }
        }
        // Multi-source BFS over buffered adjacency.
        let mut collected: Vec<u32> = frontier.clone();
        let mut d = 0usize;
        while d < radius && !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for v in sg.neighbors(u as usize) {
                    if space.has_buffer[v] && self.dist[v] == NONE {
                        self.dist[v] = d as u32;
                        next.push(v as u32);
                        collected.push(v as u32);
                    }
                }
            }
            frontier = next;
        }
        // Saturation: no neighbour of the collected set is buffered and
        // uncollected (the set already fills its connected components).
        // Components of the induced subgraph.
        self.region_of.clear();
        self.region_of.resize(n, NONE);
        let mut regions: Vec<Region> = Vec::new();
        for &start in &collected {
            if self.region_of[start as usize] != NONE {
                continue;
            }
            let rid = regions.len() as u32;
            let mut ffs = vec![start];
            self.region_of[start as usize] = rid;
            let mut stack = vec![start];
            let mut saturated = true;
            while let Some(u) = stack.pop() {
                for v in sg.neighbors(u as usize) {
                    if !space.has_buffer[v] {
                        continue;
                    }
                    if self.dist[v] == NONE {
                        saturated = false; // a buffered FF just outside
                        continue;
                    }
                    if self.region_of[v] == NONE {
                        self.region_of[v] = rid;
                        ffs.push(v as u32);
                        stack.push(v as u32);
                    }
                }
            }
            let mut members = ffs.clone();
            members.sort_unstable();
            regions.push(Region {
                ffs,
                members,
                cons: Vec::new(),
                saturated,
            });
        }
        // Attach constraints: any setup/hold constraint touching a region
        // FF.  An edge never spans two regions (adjacent collected FFs are
        // in the same component), so marking edges globally is safe.  The
        // per-edge marks are a reused stamp array (no per-chip allocation).
        self.epoch = self.epoch.wrapping_add(1);
        if self.edge_stamp.len() < sg.edges.len() || self.epoch == 0 {
            self.epoch = 1;
            self.edge_stamp.clear();
            self.edge_stamp.resize(sg.edges.len(), 0);
        }
        for region in regions.iter_mut() {
            for &ff in &region.ffs {
                for &e in sg
                    .out_edges(ff as usize)
                    .iter()
                    .chain(sg.in_edges(ff as usize))
                {
                    if self.edge_stamp[e as usize] == self.epoch {
                        continue;
                    }
                    self.edge_stamp[e as usize] = self.epoch;
                    let edge = &sg.edges[e as usize];
                    region.cons.push(ConsRef {
                        a: edge.from,
                        b: edge.to,
                        edge: e,
                        kind: ConstraintKind::Setup,
                    });
                    region.cons.push(ConsRef {
                        a: edge.to,
                        b: edge.from,
                        edge: e,
                        kind: ConstraintKind::Hold,
                    });
                }
            }
        }
        regions
    }

    /// Region-*solving* half: the support branch and bound, as a pure
    /// function of the materialised constraints, the tuning windows and
    /// the limits.  The outcome is push-independent, which is what makes
    /// it cacheable across passes with different objectives.
    fn search_region(
        &mut self,
        cons: &[RegCons],
        space: &BufferSpace,
        region: &Region,
        opts: &SolverOptions,
    ) -> CachedOutcome {
        let m = region.ffs.len();
        // Map ff -> local slot.
        self.var_of.clear();
        self.var_of.resize(space.has_buffer.len(), NONE);
        for (slot, &ff) in region.ffs.iter().enumerate() {
            self.var_of[ff as usize] = slot as u32;
        }
        let violated_local: Vec<usize> = cons
            .iter()
            .enumerate()
            .filter(|(_, c)| c.bound < 0)
            .map(|(i, _)| i)
            .collect();

        // Branch and bound over supports.  The per-node buffers (variable
        // maps, arc and bound arrays) come from the solver's scratch pool,
        // so thousands of feasibility probes share four allocations.
        let mut search = SupportSearch {
            solver: &mut self.diff,
            var_of: &self.var_of,
            region_ffs: &region.ffs,
            cons,
            violated: &violated_local,
            bounds: &space.bounds,
            best: None,
            nodes: 0,
            node_cap: opts.bb_node_cap,
            exact: true,
            vars_scratch: std::mem::take(&mut self.ss_vars),
            slot_scratch: std::mem::take(&mut self.ss_slot),
            arcs_scratch: std::mem::take(&mut self.ss_arcs),
            bounds_scratch: std::mem::take(&mut self.ss_bounds),
        };
        let phase = run_support_search(&mut search, m, opts.region_cap);
        // Return the per-node scratch to the pool before the caller needs
        // `&mut self` again.
        let (sv, ssl, sa, sb) = search.into_scratch();
        self.ss_vars = sv;
        self.ss_slot = ssl;
        self.ss_arcs = sa;
        self.ss_bounds = sb;
        match phase {
            SearchPhase::Infeasible => CachedOutcome::Infeasible,
            SearchPhase::Fallback { support, witness } => CachedOutcome::Feasible {
                count: support.len(),
                support,
                witness,
                exact: false,
            },
            SearchPhase::Best {
                count,
                support,
                witness,
                exact,
            } => CachedOutcome::Feasible {
                count,
                support,
                witness,
                exact,
            },
        }
    }

    /// Applies the push objective to a solved region.
    #[allow(clippy::too_many_arguments)]
    fn finish_region(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        space: &BufferSpace,
        count: usize,
        support: &[u32],
        witness: &[i64],
        push: PushObjective<'_>,
        opts: &SolverOptions,
    ) -> Vec<(u32, i64)> {
        match push {
            PushObjective::None => support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect(),
            PushObjective::ToZero => {
                self.concentrate(region, cons, space, count, support, witness, None, opts)
            }
            PushObjective::ToTargets(targets) => self.concentrate(
                region,
                cons,
                space,
                count,
                support,
                witness,
                Some(targets),
                opts,
            ),
        }
    }

    /// Solves `min Σ|k_i − a_i|` subject to the constraints and the buffer
    /// budget, as a MILP over the region (paper eqs. (14)–(21)).
    ///
    /// The MILP is warm-started with the search witness — a verified
    /// feasible point supplied identically whether the witness came from a
    /// fresh search or an incremental replay, so the warm start never
    /// distinguishes the two modes.
    #[allow(clippy::too_many_arguments)]
    fn concentrate(
        &mut self,
        region: &Region,
        cons: &[RegCons],
        space: &BufferSpace,
        budget: usize,
        support: &[u32],
        witness: &[i64],
        targets: Option<&[f64]>,
        opts: &SolverOptions,
    ) -> Vec<(u32, i64)> {
        let m = region.ffs.len();
        let over_supports = m <= opts.exact_push_cap;
        // Very large supports (greedy fallback on oversized regions): skip
        // the MILP and keep the witness values.
        const PUSH_SUPPORT_CAP: usize = 48;
        if !over_supports && support.len() > PUSH_SUPPORT_CAP {
            return support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect();
        }
        let mut model = Model::new();
        model.node_limit = 30_000;
        // Variables for either the full region (support is chosen by the
        // model) or just the fixed optimal support.
        let active: Vec<u32> = if over_supports {
            region.ffs.clone()
        } else {
            support.to_vec()
        };
        let mut var_slot = vec![NONE; space.has_buffer.len()];
        let mut kvars = Vec::with_capacity(active.len());
        for (s, &ff) in active.iter().enumerate() {
            var_slot[ff as usize] = s as u32;
            let (lo, hi) = space.bounds[ff as usize];
            let k = model.add_var(format!("k{ff}"), lo as f64, hi as f64, 0.0, true);
            kvars.push(k);
        }
        // Witness values per active slot (0 outside the support) and the
        // support membership — the warm-start point.
        let mut kwarm = vec![0.0f64; active.len()];
        let mut in_support = vec![false; active.len()];
        for (i, ff) in support.iter().enumerate() {
            let s = var_slot[*ff as usize];
            if s != NONE {
                kwarm[s as usize] = witness[i] as f64;
                in_support[s as usize] = true;
            }
        }
        let mut warm: Vec<f64> = kwarm.clone();
        if over_supports {
            let mut cterms = Vec::with_capacity(active.len());
            for (s, &ff) in active.iter().enumerate() {
                let c = model.add_binary(format!("c{ff}"), 0.0);
                let (lo, hi) = space.bounds[ff as usize];
                let big_m = (lo.abs().max(hi.abs()) as f64).max(1.0);
                model.add_indicator(kvars[s], c, big_m);
                cterms.push((c, 1.0));
                warm.push(if in_support[s] { 1.0 } else { 0.0 });
            }
            model.add_cons(cterms, Op::Le, budget as f64);
        }
        for c in cons {
            let sa = var_slot[c.a as usize];
            let sb = var_slot[c.b as usize];
            let mut terms = Vec::new();
            if sa != NONE {
                terms.push((kvars[sa as usize], 1.0));
            }
            if sb != NONE {
                terms.push((kvars[sb as usize], -1.0));
            }
            if terms.is_empty() {
                continue; // root-root, checked during feasibility
            }
            model.add_cons(terms, Op::Le, c.bound as f64);
        }
        for (s, &ff) in active.iter().enumerate() {
            let target = targets.map_or(0.0, |t| t[ff as usize]);
            model.add_abs_deviation(kvars[s], target, 1.0);
            warm.push((kwarm[s] - target).abs());
        }
        model.set_warm_start(warm);
        let sol = model.solve();
        if matches!(sol.status, Status::Optimal | Status::Feasible) {
            active
                .iter()
                .enumerate()
                .map(|(s, &ff)| (ff, sol.int_value(kvars[s])))
                .filter(|(_, k)| *k != 0)
                .collect()
        } else {
            // Should not happen (feasibility proven); fall back to witness.
            support
                .iter()
                .zip(witness)
                .filter(|(_, k)| **k != 0)
                .map(|(ff, k)| (*ff, *k))
                .collect()
        }
    }

    /// Solves the paper's full big-M ILP over *all* buffered FFs at once —
    /// exponentially slower but a direct transcription of eqs. (8)–(17);
    /// used by tests as a reference oracle.
    pub fn solve_reference_milp(
        &mut self,
        sg: &SequentialGraph,
        ic: &IntegerConstraints,
        space: &BufferSpace,
        push: PushObjective<'_>,
    ) -> SampleResult {
        let n = sg.n_ffs;
        let mut model = Model::new();
        let mut kvars = vec![None; n];
        let mut cterms = Vec::new();
        let mut cvars = vec![None; n];
        for ff in 0..n {
            if !space.has_buffer[ff] {
                continue;
            }
            let (lo, hi) = space.bounds[ff];
            let k = model.add_var(format!("k{ff}"), lo as f64, hi as f64, 0.0, true);
            let c = model.add_binary(format!("c{ff}"), 1.0);
            let big_m = (lo.abs().max(hi.abs()) as f64).max(1.0);
            model.add_indicator(k, c, big_m);
            kvars[ff] = Some(k);
            cvars[ff] = Some(c);
            cterms.push((c, 1.0));
        }
        let add_cons = |model: &mut Model, a: usize, b: usize, bound: i64| -> bool {
            match (kvars[a], kvars[b]) {
                (None, None) => bound >= 0,
                (ka, kb) => {
                    let mut terms = Vec::new();
                    if let Some(k) = ka {
                        terms.push((k, 1.0));
                    }
                    if let Some(k) = kb {
                        terms.push((k, -1.0));
                    }
                    model.add_cons(terms, Op::Le, bound as f64);
                    true
                }
            }
        };
        for (e, edge) in sg.edges.iter().enumerate() {
            let (i, j) = (edge.from as usize, edge.to as usize);
            if !add_cons(&mut model, i, j, ic.setup_bound[e])
                || !add_cons(&mut model, j, i, ic.hold_bound[e])
            {
                return SampleResult {
                    feasible: false,
                    exact: true,
                    tunings: Vec::new(),
                };
            }
        }
        let first = model.solve();
        if first.status != Status::Optimal {
            return SampleResult {
                feasible: false,
                exact: first.status == Status::Infeasible,
                tunings: Vec::new(),
            };
        }
        let nk = first.objective.round() as usize;
        let result_vals = match push {
            PushObjective::None => first,
            _ => {
                // Second stage: budget + |.| objective.
                let mut m2 = model.clone();
                for c in cvars.iter().flatten() {
                    m2.set_objective(*c, 0.0);
                }
                m2.add_cons(
                    cvars.iter().flatten().map(|c| (*c, 1.0)).collect(),
                    Op::Le,
                    nk as f64,
                );
                for ff in 0..n {
                    if let Some(k) = kvars[ff] {
                        let t = match push {
                            PushObjective::ToTargets(t) => t[ff],
                            _ => 0.0,
                        };
                        m2.add_abs_deviation(k, t, 1.0);
                    }
                }
                let second = m2.solve();
                if matches!(second.status, Status::Optimal | Status::Feasible) {
                    second
                } else {
                    first
                }
            }
        };
        let tunings = (0..n)
            .filter_map(|ff| {
                kvars[ff].and_then(|k| {
                    let v = result_vals.int_value(k);
                    (v != 0).then_some((ff as u32, v))
                })
            })
            .collect();
        SampleResult {
            feasible: true,
            exact: true,
            tunings,
        }
    }
}

/// Materialises a region's constraint system from the current chip in
/// **saturation-normalised form**: every bound is clamped at its exact
/// per-constraint cap, and constraints *at* their cap — which can never
/// bind — are elided entirely.
///
/// With every region variable confined to its window and everything
/// outside the region pinned to 0, the left-hand side of
/// `k(a) − k(b) ≤ bound` can never exceed `cap(a,b) = hi'(a) − lo'(b)`,
/// where `hi'`/`lo'` are the endpoint's window bounds inside the region
/// and 0 outside.  A bound at or above that cap therefore constrains
/// nothing — for the feasibility probes, for the branch-and-bound and
/// for the concentration MILP alike — so dropping it leaves the feasible
/// set of every support bit-for-bit unchanged while shrinking every
/// probe the search runs (regions attach each member FF's full edge
/// neighbourhood, and on paper-scale circuits the overwhelming majority
/// of those bounds are vacuous).  Violated bounds are negative and caps
/// never are, so every violated constraint survives exactly.
///
/// Normalisation is applied identically on the cold and incremental
/// paths (it is part of the materialisation, not the cache), and it
/// makes the materialised system — and therefore the outcome-replay and
/// cross-chip memo fingerprints — invariant to slack drift on
/// non-binding constraints.  That is what lets adjacent sweep targets,
/// whose period shift perturbs every non-critical bound by a step or
/// two, still replay each other's search outcomes for chips whose
/// *binding* structure is unchanged.
fn materialize_cons(region: &Region, ic: ConstraintsView<'_>, space: &BufferSpace) -> Vec<RegCons> {
    // Membership is checked against the region's sorted FF list; regions
    // are small, so a sorted probe beats touching an n-sized scratch.
    let window = |ff: u32| -> Option<(i64, i64)> {
        region
            .members
            .binary_search(&ff)
            .ok()
            .map(|_| space.bounds[ff as usize])
    };
    region
        .cons
        .iter()
        .filter_map(|c| {
            let hi_a = window(c.a).map_or(0, |w| w.1);
            let lo_b = window(c.b).map_or(0, |w| w.0);
            let cap = hi_a - lo_b;
            let bound = c.bound_in(ic);
            (bound < cap).then_some(RegCons {
                a: c.a,
                b: c.b,
                bound,
            })
        })
        .collect()
}

/// Reference to one side of an edge constraint, resolved against a chip's
/// bounds on demand.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConsRef {
    a: u32,
    b: u32,
    edge: u32,
    kind: ConstraintKind,
}

impl ConsRef {
    /// The bound this constraint takes in chip `ic`.
    #[inline]
    pub(crate) fn bound_in(&self, ic: ConstraintsView<'_>) -> i64 {
        match self.kind {
            ConstraintKind::Setup => ic.setup_bound[self.edge as usize],
            ConstraintKind::Hold => ic.hold_bound[self.edge as usize],
        }
    }
}

/// One connected solve region: its FFs (pinned BFS order), the attached
/// constraints, and whether it saturated its component.
#[derive(Debug)]
pub(crate) struct Region {
    pub(crate) ffs: Vec<u32>,
    /// `ffs` sorted — the membership probe used by the saturation
    /// normalisation (see [`materialize_cons`]).
    pub(crate) members: Vec<u32>,
    pub(crate) cons: Vec<ConsRef>,
    pub(crate) saturated: bool,
}
