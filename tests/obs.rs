//! Observability contract tests (`crates/obs`).
//!
//! Three invariants are pinned here:
//!
//! 1. **Byte neutrality** — a campaign's journal and canonical report are
//!    byte-identical with span tracing + metrics armed or disarmed, at 1
//!    and 8 workers.  Observability writes only to its own sinks.
//! 2. **Trace well-formedness** — the flushed Chrome trace-event file is
//!    valid JSON, every thread's B/E events nest (the stream is a
//!    balanced bracket sequence with non-decreasing timestamps), and the
//!    required span names from every instrumented layer (sampler, flow
//!    passes, solver stages, fleet job lifecycle) are present.
//! 3. **Metric determinism** — the deterministic counter/gauge subset is
//!    identical for any worker count (schedule-dependent counters like
//!    `solve.memo.*` are deliberately excluded).
//!
//! Arming is process-global, so every test serialises through
//! [`psbi::obs::test_lock`] and arms/disarms manually (the `with_*`
//! helpers take the same lock and would deadlock under it).

use psbi::fleet::{run_campaign, CampaignReport, CampaignSpec, FleetOptions};
use psbi::obs;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn quick_spec() -> CampaignSpec {
    CampaignSpec {
        samples: 60,
        yield_samples: 120,
        calibration_samples: 120,
        ..CampaignSpec::example()
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("psbi_obs_test_{tag}_{}", std::process::id()))
}

/// Disarms both obs subsystems on drop, so a failing assertion cannot
/// leave the process armed for the next (gated) test.
struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        obs::trace::disarm();
        obs::metrics::disarm();
    }
}

/// Runs the quick campaign and returns its canonical byte surface:
/// `(journal bytes, canonical report JSON)`.
fn campaign_bytes(tag: &str, workers: usize, trace: Option<PathBuf>) -> (Vec<u8>, String) {
    let spec = quick_spec();
    let journal = tmp(tag);
    let _ = std::fs::remove_file(&journal);
    let outcome = run_campaign(
        &spec,
        &journal,
        &FleetOptions {
            workers,
            trace,
            ..FleetOptions::default()
        },
    )
    .expect("campaign");
    assert!(outcome.complete());
    let report = CampaignReport::from_outcome(&spec, &outcome).json(false);
    let bytes = std::fs::read(&journal).unwrap();
    let _ = std::fs::remove_file(&journal);
    (bytes, report)
}

#[test]
fn canonical_bytes_identical_with_obs_armed_or_disarmed() {
    let _gate = obs::test_lock();
    let _disarm = DisarmOnDrop;
    obs::trace::disarm();
    obs::metrics::disarm();
    let reference = campaign_bytes("neutral_ref", 1, None);

    for workers in [1usize, 8] {
        let trace_path = tmp(&format!("neutral_trace_w{workers}"));
        obs::metrics::arm(None);
        let armed = campaign_bytes(
            &format!("neutral_w{workers}"),
            workers,
            Some(trace_path.clone()),
        );
        obs::trace::disarm();
        obs::metrics::disarm();
        assert_eq!(
            armed.0, reference.0,
            "journal bytes changed with obs armed at {workers} workers"
        );
        assert_eq!(
            armed.1, reference.1,
            "canonical report changed with obs armed at {workers} workers"
        );
        let _ = std::fs::remove_file(&trace_path);
    }
}

#[test]
fn trace_is_valid_json_with_nested_spans_and_covers_every_layer() {
    let _gate = obs::test_lock();
    let _disarm = DisarmOnDrop;
    let trace_path = tmp("wellformed_trace");
    let _ = std::fs::remove_file(&trace_path);
    let _ = campaign_bytes("wellformed", 2, Some(trace_path.clone()));
    obs::trace::disarm();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    // A JSON array (the fleet crate's strict parser doubles as the
    // validity oracle — no external JSON dependency).
    let parsed = psbi::fleet::json::Json::parse(&text).expect("trace is valid JSON");
    assert!(
        matches!(parsed, psbi::fleet::json::Json::Arr(_)),
        "trace root must be an array"
    );

    // Per-thread balanced nesting with monotone timestamps.  Flush writes
    // one event object per line, so line-level field extraction is exact.
    let field = |line: &str, key: &str| -> Option<String> {
        let idx = line.find(&format!("\"{key}\":"))?;
        let rest = &line[idx + key.len() + 3..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
        Some(rest[..end].to_string())
    };
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut events = 0usize;
    for line in text.lines().filter(|l| l.contains("\"ph\":")) {
        events += 1;
        let name = field(line, "name").expect("event has a name");
        let ph = field(line, "ph").expect("event has a phase");
        let tid: u64 = field(line, "tid").unwrap().parse().unwrap();
        let ts: f64 = field(line, "ts").unwrap().parse().unwrap();
        let prev = last_ts.insert(tid, ts).unwrap_or(0.0);
        assert!(
            ts >= prev,
            "timestamps must be non-decreasing per thread (tid {tid}: {prev} -> {ts})"
        );
        let stack = stacks.entry(tid).or_default();
        match ph.as_str() {
            "B" => {
                stack.push(name.clone());
                names.push(name);
            }
            "E" => {
                let open = stack
                    .pop()
                    .unwrap_or_else(|| panic!("tid {tid}: E event `{name}` with no open span"));
                assert_eq!(open, name, "tid {tid}: spans must close LIFO");
            }
            other => panic!("unexpected phase `{other}`"),
        }
    }
    assert!(events > 0, "traced campaign produced no events");
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid}: unclosed spans {stack:?}");
    }

    // Every instrumented layer shows up: sampler, flow passes, solver
    // stages, fleet job lifecycle.  (flow.pass.b1 is legitimately absent
    // when the refit-skip heuristic fires, so it is not required.)
    for required in [
        "fleet.campaign",
        "fleet.job",
        "fleet.job.attempt",
        "fleet.commit",
        "fleet.journal.write",
        "flow.target",
        "flow.calibrate",
        "flow.chunk",
        "flow.pass.a1",
        "flow.pass.a3",
        "flow.pass.b2",
        "flow.group",
        "flow.yield",
        "sample.batch.fill",
        "timing.extract",
        "solve.stage.discovery",
        "solve.stage.screen",
        "solve.stage.search",
        "solve.stage.milp",
        "solve.region.plan",
        "solve.region.task",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "trace is missing required span `{required}`"
        );
    }
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn deterministic_counters_and_gauges_are_worker_count_invariant() {
    let _gate = obs::test_lock();
    let _disarm = DisarmOnDrop;
    let snapshot_for = |workers: usize| {
        obs::metrics::arm(None); // arming clears the registry
        let _ = campaign_bytes(&format!("counters_w{workers}"), workers, None);
        let snap = obs::metrics::snapshot();
        obs::metrics::disarm();
        snap
    };
    let one = snapshot_for(1);
    let eight = snapshot_for(8);

    // Deterministic subset: pure functions of (spec, grid), independent
    // of which worker ran what.  `solve.memo.*` and
    // `pool.workspace.created` are schedule-dependent and excluded.
    for counter in [
        "sample.batches",
        "sample.chips",
        "timing.extract.batches",
        "flow.chunks",
        "flow.targets",
        "pool.checkouts",
        "fleet.job.attempts",
        "fleet.jobs.executed",
        "fleet.jobs.committed",
        "fleet.journal.writes",
    ] {
        let a = one.counter(counter);
        let b = eight.counter(counter);
        assert_eq!(a, b, "counter `{counter}` varies with worker count");
        assert!(
            a.unwrap_or(0) > 0,
            "counter `{counter}` never incremented — dead instrumentation"
        );
    }
    assert_eq!(
        one.gauge("simd.backend"),
        eight.gauge("simd.backend"),
        "backend gauge varies with worker count"
    );
    let total_jobs = quick_spec().jobs().len() as u64;
    assert_eq!(one.gauge("fleet.jobs.total"), Some(total_jobs));
    assert_eq!(one.counter("fleet.jobs.executed"), Some(total_jobs));
    // No faults were injected, so nothing was retried or quarantined.
    assert_eq!(one.counter("fleet.jobs.retried"), None);
    assert_eq!(one.counter("fleet.jobs.quarantined"), None);
}
