#![warn(missing_docs)]
//! Sampling-based post-silicon clock-tuning buffer insertion.
//!
//! This crate implements the method of *Sampling-based Buffer Insertion for
//! Post-Silicon Yield Improvement under Process Variability* (Zhang, Li,
//! Schlichtmann — DATE 2016) end to end:
//!
//! 1. **Step 1 — floating lower bounds** ([`flow`], [`solve`]):
//!    Monte-Carlo samples are drawn; each sample's minimum set of adjusted
//!    buffers is found exactly (§III-A1), buffers that are almost never
//!    used are pruned (§III-A2, [`prune`]), tuning values are pushed toward
//!    zero (§III-A3) and each surviving buffer's range window is anchored
//!    at the histogram position covering the most tunings (§III-A4).
//! 2. **Step 2 — fixed lower bounds**: the sampling is re-run with the
//!    fixed windows when needed (§III-B1), tuning values are concentrated
//!    toward their per-buffer averages (§III-B2) and the final ranges are
//!    the observed min/max tunings.
//! 3. **Step 3 — grouping** ([`group`]): buffers with mutually correlated
//!    tuning values (r ≥ 0.8) that sit physically close share one physical
//!    buffer; an optional cap drops the least-used buffers.
//!
//! The per-sample optimisation — the paper uses Gurobi on an ILP with
//! indicator variables — is solved here by an exact specialised search:
//! violated constraints are localised into small regions (provably
//! sufficient, see [`solve`]), a branch-and-bound over buffer *support
//! sets* with vertex-cover lower bounds finds the minimum buffer count, and
//! the value-concentration objectives are solved with the in-workspace MILP
//! ([`psbi_milp`]).  Yield evaluation ([`yield_eval`]) reduces to
//! difference-constraint feasibility per sample, and the same machinery
//! configures a manufactured chip ([`configure`] — the paper's future-work
//! step).
//!
//! # Execution engine and determinism
//!
//! Every Monte-Carlo stage runs on a batched, structure-of-arrays engine:
//! the sample stream is cut into fixed-size chunks, each chunk is drawn
//! into a reused [`psbi_timing::SampleBatch`], its constraints are
//! extracted into a [`psbi_timing::ConstraintBatch`], and the per-chip
//! solves run from a pool of per-worker workspaces
//! ([`solve::SampleSolver`] with persistent branch-and-bound scratch and a
//! warm-started difference-constraint solver).  Chunks are scheduled onto
//! a rayon-style work-stealing parallel iterator.
//!
//! **Determinism guarantee:** chip `k` is seeded by `(stream, k)` alone,
//! chunk boundaries are fixed constants, and chunk results merge in chunk
//! order — so every flow result (ranges, deployment, yields) is
//! bit-identical for any worker thread count, including
//! `RAYON_NUM_THREADS=1` versus all cores.  The `determinism` integration
//! test enforces this.
//!
//! # Entry surfaces
//!
//! Flows are assembled with [`flow::FlowBuilder`]
//! (`BufferInsertionFlow::builder(..).library(..).pool(..).build()`), and
//! the per-sample solver is driven through a single request-shaped entry
//! point ([`solve::SolveRequest`] → [`solve::SampleSolver::solve`]) whose
//! optional cache tiers and region-parallel execution are fields of the
//! request rather than separate entry points — see [`solve`] for the
//! plan/execute session underneath.
//!
//! # Example
//!
//! ```
//! use psbi_core::flow::{BufferInsertionFlow, FlowConfig};
//! use psbi_netlist::bench_suite;
//!
//! let circuit = bench_suite::tiny_demo(3);
//! let mut cfg = FlowConfig::default();
//! cfg.samples = 150;
//! cfg.yield_samples = 300;
//! let flow = BufferInsertionFlow::builder(&circuit, cfg).build().unwrap();
//! let result = flow.run();
//! assert!(result.yield_with_buffers >= result.yield_baseline - 1e-9);
//! ```

pub mod area;
pub mod binning;
pub mod configure;
pub mod flow;
pub mod group;
pub mod prune;
pub mod report;
pub mod solve;
pub mod verify;
pub mod yield_eval;

pub use flow::{
    BinningRequest, BufferInsertionFlow, FlowBuilder, FlowConfig, FlowDiagnostics, FlowError,
    InsertionResult, SampleRequest, TargetPeriod, WorkspacePool,
};
pub use solve::{
    BufferSpace, ChipSolveState, PassDiagnostics, PushObjective, RegionMemo, RegionOutcome,
    RegionTask, SampleResult, SampleSolver, SolveOutcome, SolveRequest, SolveSession,
    SolverOptions,
};
pub use verify::VerifyReport;
