#![warn(missing_docs)]
//! Standard-cell library model for the PSBI workspace.
//!
//! The paper maps its benchmark circuits to "a library from an industry
//! partner"; that library is proprietary, so this crate provides the closest
//! open equivalent: a linear-delay cell library with per-cell sensitivities
//! to the three process parameters the paper varies (transistor length,
//! oxide thickness, threshold voltage).  See `DESIGN.md` §2 for the
//! substitution rationale.
//!
//! * Units: delays in **picoseconds**, capacitances in **femtofarads**.
//! * Combinational delay model: `d = intrinsic + drive · load` (linear in
//!   the capacitive load).
//! * Variation model: the nominal delay is modulated multiplicatively,
//!   `d = d_nom · (1 + Σ_p s_p · σ_p · δ_p)`, with `δ_p` standard normal and
//!   split into chip-global and per-gate local parts by
//!   [`psbi_variation::VariationModel`]; [`CellDef::delay_canonical`]
//!   produces the corresponding canonical first-order form.
//!
//! A small text format (`.plib`) with a full parser/writer round-trip is
//! included so libraries can be stored and exchanged; see [`format::parse`].
//!
//! # Example
//!
//! ```
//! use psbi_liberty::Library;
//! use psbi_variation::VariationModel;
//!
//! let lib = Library::industry_like();
//! let inv = lib.cell("INV_X1").expect("INV_X1 exists");
//! let nominal = inv.delay(2.0);
//! let canon = inv.delay_canonical(2.0, &VariationModel::paper_defaults());
//! assert!((canon.mean() - nominal).abs() < 1e-12);
//! assert!(canon.sigma() > 0.0);
//! ```

pub mod cells;
pub mod format;

pub use cells::{CellDef, CellFunction, FlipFlopDef, Library, LibraryError};
pub use format::{parse, to_text, ParseError};
