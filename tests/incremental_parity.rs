//! Incremental-solve and cross-chip-memo parity regression: carrying
//! per-chip solver state (region decompositions, support sets, warm
//! witnesses) across the A1→A3→B1→B2 passes — and across adjacent targets
//! of a fleet sweep — and deduplicating identical region subproblems
//! across chips through the flow-level memo table must both be
//! **bit-invisible**.  The same contract covers region-parallel search:
//! fanning a chip's independent region solves out on the region pool
//! commits results in pinned region order, so it must also be
//! bit-invisible.  Every surface the flow produces is compared across
//! the knob matrix (incremental on/off × cross-chip on/off ×
//! region-parallel on/off), at 1 and 8 workers:
//!
//! * full `InsertionResult`s (modulo wall times and the caches' own
//!   counters, which are non-canonical by contract),
//! * fleet journal bytes and canonical report bytes.
//!
//! The `PSBI_NO_INCREMENTAL=1` / `PSBI_NO_CROSSCHIP=1` /
//! `PSBI_NO_REGION_PARALLEL=1` environment forms of the same contract
//! are pinned by the CI determinism job (the env flags are read once per
//! process, so this in-process test uses the equivalent config/option
//! knobs instead).

use psbi::core::flow::{BufferInsertionFlow, FlowConfig, InsertionResult, TargetPeriod};
use psbi::fleet::{run_campaign, CampaignReport, CampaignSpec, FleetOptions};
use psbi::netlist::bench_suite;
use std::path::PathBuf;

/// Strips the non-canonical surfaces: wall times always differ between
/// runs, and the cache counters differ between modes by definition.
fn normalized(mut r: InsertionResult) -> InsertionResult {
    r.runtime = Default::default();
    r.diagnostics = Default::default();
    r
}

#[test]
fn full_flow_is_bit_identical_across_the_cache_matrix() {
    let circuit = bench_suite::tiny_demo(42);
    let cfg =
        |threads: usize, incremental: bool, cross_chip: bool, region_parallel: bool| FlowConfig {
            samples: 160,
            yield_samples: 300,
            calibration_samples: 300,
            seed: 2024,
            threads,
            target: TargetPeriod::SigmaFactor(0.0),
            record_histograms: 2,
            incremental,
            cross_chip,
            region_parallel,
            ..FlowConfig::default()
        };
    // Warm flows swept over adjacent targets (state arenas and memo
    // carried across run_target calls) versus a fully cold flow, across
    // the cache matrix and at both worker counts.
    let reference_flow = BufferInsertionFlow::builder(&circuit, cfg(1, false, false, false))
        .build()
        .unwrap();
    assert!(!reference_flow.incremental_enabled());
    assert!(!reference_flow.cross_chip_enabled());
    assert!(!reference_flow.region_parallel_enabled());
    let variants = [
        ("incremental+crosschip w1", cfg(1, true, true, true)),
        ("incremental+crosschip w8", cfg(8, true, true, true)),
        ("incremental-only w8", cfg(8, true, false, true)),
        ("crosschip-only w8", cfg(8, false, true, true)),
        ("no-region-parallel w8", cfg(8, true, true, false)),
        (
            "crosschip-only no-region-parallel w8",
            cfg(8, false, true, false),
        ),
        ("cold region-parallel w8", cfg(8, false, false, true)),
    ];
    let flows: Vec<(&str, BufferInsertionFlow)> = variants
        .iter()
        .map(|(name, c)| {
            (
                *name,
                BufferInsertionFlow::builder(&circuit, c.clone())
                    .build()
                    .unwrap(),
            )
        })
        .collect();
    let mut reused = 0u64;
    let mut memo_hits = 0u64;
    for k in [0.0, 0.5, 1.0] {
        let target = TargetPeriod::SigmaFactor(k);
        let reference = normalized(reference_flow.run_target(target));
        for (name, flow) in &flows {
            let r = flow.run_target(target);
            let totals = r.diagnostics.total();
            reused += totals.regions_reused + totals.supports_rehit;
            memo_hits += totals.cross_chip_hits;
            if !flow.cross_chip_enabled() {
                assert_eq!(totals.cross_chip_hits, 0, "{name} hit a disabled memo");
            }
            assert_eq!(
                normalized(r),
                reference,
                "{name} diverged from the cold flow at k = {k}"
            );
        }
    }
    assert!(reused > 0, "the warm sweeps never exercised the arenas");
    // The CI determinism job re-runs this test with `PSBI_NO_CROSSCHIP=1`,
    // where zero hits is the contract rather than a bug.
    let env_allows_memo = flows.iter().any(|(_, f)| f.cross_chip_enabled());
    if env_allows_memo {
        assert!(
            memo_hits > 0,
            "the warm sweeps never hit the cross-chip memo"
        );
    } else {
        assert_eq!(memo_hits, 0, "a disabled memo must never be consulted");
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "psbi_incremental_parity_{tag}_{}",
        std::process::id()
    ))
}

#[test]
fn fleet_journal_bytes_are_identical_across_the_cache_matrix() {
    let spec = CampaignSpec {
        samples: 100,
        yield_samples: 200,
        calibration_samples: 200,
        seed: 2024,
        // Adjacent sigma factors so the sweep actually revisits warm
        // state between targets of one circuit.
        sigma_factors: vec![0.0, 0.25, 0.5],
        ..CampaignSpec::example()
    };
    let opts =
        |workers: usize, incremental: bool, cross_chip: bool, region_parallel: bool| FleetOptions {
            workers,
            incremental,
            cross_chip,
            region_parallel,
            ..FleetOptions::default()
        };
    let mut journals: Vec<(PathBuf, Vec<u8>, String)> = Vec::new();
    for (tag, workers, incremental, cross_chip, region_parallel) in [
        ("on_on_w1", 1, true, true, true),
        ("on_on_w8", 8, true, true, true),
        ("off_off_w1", 1, false, false, false),
        ("off_off_w8", 8, false, false, false),
        ("on_off_w8", 8, true, false, true),
        ("off_on_w8", 8, false, true, true),
        ("no_rp_w8", 8, true, true, false),
        ("no_rp_w1", 1, true, true, false),
    ] {
        let path = tmp(tag);
        let _ = std::fs::remove_file(&path);
        let outcome = run_campaign(
            &spec,
            &path,
            &opts(workers, incremental, cross_chip, region_parallel),
        )
        .expect("campaign runs");
        assert!(outcome.complete());
        let report = CampaignReport::from_outcome(&spec, &outcome).canonical_json();
        let bytes = std::fs::read(&path).expect("journal written");
        journals.push((path, bytes, report));
    }
    let (_, reference_bytes, reference_report) = &journals[0];
    for (path, bytes, report) in &journals[1..] {
        assert_eq!(
            bytes,
            reference_bytes,
            "journal bytes differ: {}",
            path.display()
        );
        assert_eq!(report, reference_report, "canonical report differs");
    }
    for (path, _, _) in &journals {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn fleet_kill_and_resume_reproduces_bytes_with_cross_chip_memo() {
    // A mid-campaign kill + resume (which also exercises the early
    // per-circuit state release of the checkpointed window) must
    // reproduce the uninterrupted journal and canonical report byte for
    // byte with every cache enabled.
    let spec = CampaignSpec {
        samples: 80,
        yield_samples: 160,
        calibration_samples: 160,
        seed: 77,
        sigma_factors: vec![0.0, 0.25],
        ..CampaignSpec::example()
    };
    let full = tmp("resume_full");
    let split = tmp("resume_split");
    for p in [&full, &split] {
        let _ = std::fs::remove_file(p);
    }
    let uninterrupted = run_campaign(&spec, &full, &FleetOptions::default()).unwrap();
    assert!(uninterrupted.complete());
    let first = run_campaign(
        &spec,
        &split,
        &FleetOptions {
            max_jobs: Some(1),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    assert!(!first.complete());
    let second = run_campaign(&spec, &split, &FleetOptions::default()).unwrap();
    assert!(second.complete());
    assert_eq!(second.records, uninterrupted.records);
    assert_eq!(
        std::fs::read(&full).unwrap(),
        std::fs::read(&split).unwrap(),
        "kill + resume must reproduce the uninterrupted journal bytes"
    );
    assert_eq!(
        CampaignReport::from_outcome(&spec, &second).canonical_json(),
        CampaignReport::from_outcome(&spec, &uninterrupted).canonical_json()
    );
    for p in [&full, &split] {
        let _ = std::fs::remove_file(p);
    }
}
