//! Deterministic per-sample RNG derivation.
//!
//! Every Monte-Carlo sample `k` gets an RNG seeded by mixing the base seed
//! with `k` through SplitMix64.  Results are therefore bit-identical no
//! matter how samples are distributed over worker threads.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a strong 64-bit mixing function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG for sample `index` of a run with seed `base_seed`.
///
/// ```
/// use rand::RngCore;
/// let mut a = psbi_variation::sample_rng(42, 7);
/// let mut b = psbi_variation::sample_rng(42, 7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub fn sample_rng(base_seed: u64, index: u64) -> StdRng {
    let mixed = splitmix64(base_seed ^ splitmix64(index.wrapping_add(0xA076_1D64_78BD_642F)));
    StdRng::seed_from_u64(mixed)
}

/// Derives a named sub-stream seed (e.g. separate streams for circuit
/// generation, insertion sampling and yield evaluation).
///
/// ```
/// let a = psbi_variation::seeding::stream_seed(1, "yield");
/// let b = psbi_variation::seeding::stream_seed(1, "insertion");
/// assert_ne!(a, b);
/// ```
pub fn stream_seed(base_seed: u64, label: &str) -> u64 {
    splitmix64(base_seed ^ fnv1a(label.as_bytes()))
}

/// 64-bit FNV-1a digest — the workspace's one shared implementation
/// (stream labelling here, campaign fingerprints in `psbi_fleet`, parity
/// dumps in `psbi-bench`).
///
/// ```
/// // Offset basis: the hash of the empty string.
/// assert_eq!(psbi_variation::seeding::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &byte in bytes {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = sample_rng(7, 123);
        let mut b = sample_rng(7, 123);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_indices_different_streams() {
        let mut a = sample_rng(7, 0);
        let mut b = sample_rng(7, 1);
        let same = (0..8).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = sample_rng(1, 5);
        let mut b = sample_rng(2, 5);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream_labels_are_distinct() {
        let labels = ["gen", "insert", "yield", "skew"];
        let mut seeds: Vec<u64> = labels.iter().map(|l| stream_seed(9, l)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), labels.len());
    }
}
