//! Aggregated campaign reporting: per-circuit/per-k tables in
//! human-readable and JSON form.
//!
//! The JSON report has a **canonical** part — campaign identity, the job
//! records, and summary aggregates, all computed in job order with
//! deterministic float formatting — and an optional `timings` section.
//! Wall-clock times are the only run-dependent data a campaign produces,
//! so excluding them (the default, and always the `canonical_json` form)
//! makes the report byte-identical across worker counts and across
//! interrupted-and-resumed runs; the determinism tests compare exactly
//! these bytes.

use crate::journal::JobRecord;
use crate::json::{escape, fmt_f64};
use crate::runner::CampaignOutcome;
use crate::spec::CampaignSpec;
use psbi_core::flow::FlowDiagnostics;
use std::fmt::Write as _;

/// Aggregates per sigma factor `k` (one column group of the paper's
/// Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct SigmaSummary {
    /// The sigma factor.
    pub sigma_factor: f64,
    /// Jobs recorded at this factor.
    pub jobs: usize,
    /// Mean unbuffered yield (%).
    pub mean_yield_baseline: f64,
    /// Mean buffered yield (%).
    pub mean_yield_buffered: f64,
    /// Mean improvement (pts).
    pub mean_improvement: f64,
    /// Total physical buffers.
    pub total_buffers: usize,
    /// Total delay elements (area proxy).
    pub total_delay_elements: u64,
}

/// The assembled campaign report.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Spec fingerprint (binds report to journal and spec).
    pub fingerprint: String,
    /// Grid size.
    pub total_jobs: usize,
    /// Completed records in job order.
    pub records: Vec<JobRecord>,
    /// Per-job wall seconds (`None` when resumed or unavailable).
    pub job_wall_s: Vec<Option<f64>>,
    /// Per-job incremental-cache counters (`None` when resumed or
    /// unavailable).  Non-canonical, exactly like the wall times: they
    /// vary with worker scheduling and the `PSBI_NO_INCREMENTAL` escape
    /// hatch, so they live outside the canonical byte surface.
    ///
    /// Resumed jobs are always `None`: diagnostics are quarantined from
    /// the journal by design, so a resumed campaign only reports the
    /// jobs *this* invocation executed (the tables and the
    /// `solver_cache` section say so explicitly).
    pub job_diagnostics: Vec<Option<FlowDiagnostics>>,
    /// Peak chip-state slots resident in the shared pool during the
    /// producing invocation (`None` when rendered from a journal).
    /// Non-canonical, like the wall times.
    pub peak_resident_states: Option<u64>,
    /// Wall time of the producing invocation, when known.
    pub wall_s: Option<f64>,
}

impl CampaignReport {
    /// Builds the report from a live run's outcome (timings available).
    pub fn from_outcome(spec: &CampaignSpec, outcome: &CampaignOutcome) -> Self {
        Self {
            name: spec.name.clone(),
            fingerprint: spec.fingerprint(),
            total_jobs: outcome.total_jobs,
            records: outcome.records.clone(),
            job_wall_s: outcome.job_wall_s.clone(),
            job_diagnostics: outcome.job_diagnostics.clone(),
            peak_resident_states: Some(outcome.peak_resident_states),
            wall_s: Some(outcome.wall_s),
        }
    }

    /// Builds the report from replayed journal records (no timings).
    pub fn from_records(spec: &CampaignSpec, records: Vec<JobRecord>) -> Self {
        let total = spec.jobs().len();
        Self {
            name: spec.name.clone(),
            fingerprint: spec.fingerprint(),
            total_jobs: total,
            job_wall_s: vec![None; total],
            job_diagnostics: vec![None; total],
            peak_resident_states: None,
            records,
            wall_s: None,
        }
    }

    /// Incremental-cache counters summed over the jobs this invocation
    /// executed, when any were recorded.
    pub fn solver_cache_totals(&self) -> Option<psbi_core::solve::PassDiagnostics> {
        let mut any = false;
        let mut total = psbi_core::solve::PassDiagnostics::default();
        for diag in self.job_diagnostics.iter().flatten() {
            any = true;
            total.merge(&diag.total());
        }
        any.then_some(total)
    }

    /// Whether every grid cell has a record.
    pub fn complete(&self) -> bool {
        self.records.len() == self.total_jobs
    }

    /// Records that exhausted their retry budget and carry no result
    /// (their numeric fields are zeroed — see `JobRecord::quarantined`).
    pub fn quarantined(&self) -> Vec<&JobRecord> {
        self.records.iter().filter(|r| r.quarantined).collect()
    }

    /// Per-sigma-factor aggregates, in first-appearance (grid) order.
    /// Quarantined records are excluded — averaging their zeroed fields
    /// would silently drag every mean down.
    pub fn sigma_summaries(&self) -> Vec<SigmaSummary> {
        let healthy: Vec<&JobRecord> = self.records.iter().filter(|r| !r.quarantined).collect();
        let mut order: Vec<f64> = Vec::new();
        for r in &healthy {
            if !order
                .iter()
                .any(|k| k.to_bits() == r.sigma_factor.to_bits())
            {
                order.push(r.sigma_factor);
            }
        }
        order
            .into_iter()
            .map(|k| {
                let rows: Vec<&JobRecord> = healthy
                    .iter()
                    .copied()
                    .filter(|r| r.sigma_factor.to_bits() == k.to_bits())
                    .collect();
                let n = rows.len() as f64;
                SigmaSummary {
                    sigma_factor: k,
                    jobs: rows.len(),
                    mean_yield_baseline: rows.iter().map(|r| r.yield_baseline).sum::<f64>() / n,
                    mean_yield_buffered: rows.iter().map(|r| r.yield_with_buffers).sum::<f64>() / n,
                    mean_improvement: rows.iter().map(|r| r.improvement).sum::<f64>() / n,
                    total_buffers: rows.iter().map(|r| r.nb).sum(),
                    total_delay_elements: rows.iter().map(|r| r.delay_elements).sum(),
                }
            })
            .collect()
    }

    /// The human-readable report: per-job table, per-k aggregates, and
    /// wall times when available.
    pub fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign `{}` ({}): {}/{} jobs complete",
            self.name,
            self.fingerprint,
            self.records.len(),
            self.total_jobs
        );
        let _ = writeln!(
            out,
            "| job | circuit | ns | ng | k | T (ps) | Nb | Ab | Yo (%) | Y (%) | Yi (pts) | elems | bits | wall (s) |"
        );
        let _ = writeln!(
            out,
            "|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|"
        );
        for r in &self.records {
            let wall = self
                .job_wall_s
                .get(r.job)
                .copied()
                .flatten()
                .map_or_else(|| "cached".to_string(), |w| format!("{w:.2}"));
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.2} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {} | {} | {} |",
                r.job,
                r.circuit_id,
                r.n_ffs,
                r.n_gates,
                r.sigma_factor,
                r.period,
                r.nb,
                r.ab,
                r.yield_baseline,
                r.yield_with_buffers,
                r.improvement,
                r.delay_elements,
                r.config_bits,
                wall
            );
        }
        let _ = writeln!(out);
        let quarantined = self.quarantined();
        if !quarantined.is_empty() {
            let _ = writeln!(out, "quarantined jobs (excluded from aggregates):");
            for r in &quarantined {
                let _ = writeln!(
                    out,
                    "  job {} {} k={}: {}",
                    r.job, r.circuit_id, r.sigma_factor, r.fault
                );
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "per-sigma aggregates:");
        for s in self.sigma_summaries() {
            let _ = writeln!(
                out,
                "  k={}: {} jobs, mean Yo {:.2}% -> Y {:.2}% (Yi {:.2} pts), \
                 {} buffers, {} delay elements",
                s.sigma_factor,
                s.jobs,
                s.mean_yield_baseline,
                s.mean_yield_buffered,
                s.mean_improvement,
                s.total_buffers,
                s.total_delay_elements
            );
        }
        if let Some(cache) = self.solver_cache_totals() {
            let _ = writeln!(
                out,
                "solver cache (executed jobs; resumed jobs' counters stay in the \
                 journal-quarantined past): {} regions reused, {} supports rehit, \
                 {} cross-chip memo hits, {} of {} regions saturated region_cap",
                cache.regions_reused,
                cache.supports_rehit,
                cache.cross_chip_hits,
                cache.regions_saturated,
                cache.regions_total
            );
        }
        if let Some(peak) = self.peak_resident_states {
            let _ = writeln!(
                out,
                "peak resident solver state: {peak} chip slots (arenas freed as \
                 each circuit's job group completed)"
            );
        }
        if let Some(wall) = self.wall_s {
            let executed = self.job_wall_s.iter().flatten().count();
            let _ = writeln!(
                out,
                "executed {executed} jobs in {wall:.2} s ({} resumed from journal)",
                self.records.len().saturating_sub(executed)
            );
        }
        out
    }

    /// The JSON report.  With `include_timings == false` this is the
    /// canonical byte-deterministic form.
    pub fn json(&self, include_timings: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"campaign\": \"{}\",", escape(&self.name));
        let _ = writeln!(out, "  \"fingerprint\": \"{}\",", self.fingerprint);
        let _ = writeln!(out, "  \"jobs_total\": {},", self.total_jobs);
        let _ = writeln!(out, "  \"jobs_completed\": {},", self.records.len());
        let _ = writeln!(out, "  \"jobs_quarantined\": {},", self.quarantined().len());
        let _ = writeln!(out, "  \"complete\": {},", self.complete());
        let _ = writeln!(out, "  \"results\": [");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", r.to_json_line());
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"summary\": {{");
        let _ = writeln!(out, "    \"per_sigma\": [");
        let summaries = self.sigma_summaries();
        for (i, s) in summaries.iter().enumerate() {
            let comma = if i + 1 < summaries.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "      {{\"sigma_factor\":{},\"jobs\":{},\"mean_yield_baseline\":{},\
                 \"mean_yield_buffered\":{},\"mean_improvement\":{},\"total_buffers\":{},\
                 \"total_delay_elements\":{}}}{comma}",
                fmt_f64(s.sigma_factor),
                s.jobs,
                fmt_f64(s.mean_yield_baseline),
                fmt_f64(s.mean_yield_buffered),
                fmt_f64(s.mean_improvement),
                s.total_buffers,
                s.total_delay_elements
            );
        }
        let _ = writeln!(out, "    ],");
        let _ = writeln!(
            out,
            "    \"total_buffers\": {},",
            self.records.iter().map(|r| r.nb).sum::<usize>()
        );
        let _ = writeln!(
            out,
            "    \"total_delay_elements\": {},",
            self.records.iter().map(|r| r.delay_elements).sum::<u64>()
        );
        let _ = writeln!(
            out,
            "    \"total_config_bits\": {}",
            self.records.iter().map(|r| r.config_bits).sum::<u64>()
        );
        if include_timings {
            let _ = writeln!(out, "  }},");
            let _ = writeln!(out, "  \"timings\": {{");
            let walls: Vec<String> = self
                .job_wall_s
                .iter()
                .map(|w| w.map_or_else(|| "null".to_string(), |v| format!("{v:.6}")))
                .collect();
            let _ = writeln!(out, "    \"job_wall_s\": [{}],", walls.join(", "));
            let _ = writeln!(
                out,
                "    \"total_wall_s\": {}",
                self.wall_s
                    .map_or_else(|| "null".to_string(), |v| format!("{v:.6}"))
            );
            // The incremental-solver counters ride in the same
            // non-canonical section as the wall times: both vary with
            // scheduling and the PSBI_NO_INCREMENTAL escape hatch while
            // the canonical results do not.
            match self.solver_cache_totals() {
                Some(cache) => {
                    let _ = writeln!(out, "  }},");
                    let _ = writeln!(out, "  \"solver_cache\": {{");
                    let _ = writeln!(out, "    \"regions_total\": {},", cache.regions_total);
                    let _ = writeln!(
                        out,
                        "    \"regions_saturated\": {},",
                        cache.regions_saturated
                    );
                    let _ = writeln!(out, "    \"regions_reused\": {},", cache.regions_reused);
                    let _ = writeln!(out, "    \"supports_rehit\": {},", cache.supports_rehit);
                    let _ = writeln!(out, "    \"cross_chip_hits\": {},", cache.cross_chip_hits);
                    let _ = writeln!(
                        out,
                        "    \"peak_resident_states\": {}",
                        self.peak_resident_states
                            .map_or_else(|| "null".to_string(), |v| v.to_string())
                    );
                    let _ = writeln!(out, "  }}");
                }
                None => {
                    let _ = writeln!(out, "  }}");
                }
            }
        } else {
            let _ = writeln!(out, "  }}");
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// The byte-deterministic report form (no timing section): identical
    /// across worker counts and across kill + resume.
    pub fn canonical_json(&self) -> String {
        self.json(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn record(job: usize, k: f64, nb: usize) -> JobRecord {
        JobRecord {
            job,
            circuit_id: format!("tiny_demo:{}", job / 2 + 1),
            circuit: "tiny_demo".into(),
            n_ffs: 24,
            n_gates: 220,
            sigma_factor: k,
            mu_t: 1000.0,
            sigma_t: 50.0,
            period: 1000.0 + k * 50.0,
            step: 7.8125,
            nb,
            ab: 4.0,
            yield_baseline: 50.0 + 20.0 * k,
            yield_with_buffers: 90.0 + 4.0 * k,
            improvement: 40.0 - 16.0 * k,
            rescued: 100,
            broken: 0,
            buffers_before_grouping: nb + 1,
            delay_elements: 8 * nb as u64,
            config_bits: 3 * nb as u64,
            a1_infeasible: 0,
            b2_infeasible: 0,
            refit_ran: false,
            quarantined: false,
            fault: String::new(),
        }
    }

    fn sample_report() -> CampaignReport {
        let spec = CampaignSpec::example();
        let records = vec![
            record(0, 0.0, 3),
            record(1, 2.0, 2),
            record(2, 0.0, 5),
            record(3, 2.0, 1),
        ];
        CampaignReport::from_records(&spec, records)
    }

    #[test]
    fn aggregates_group_by_sigma_in_grid_order() {
        let report = sample_report();
        assert!(report.complete());
        let sums = report.sigma_summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].sigma_factor, 0.0);
        assert_eq!(sums[0].jobs, 2);
        assert_eq!(sums[0].total_buffers, 8);
        assert_eq!(sums[1].sigma_factor, 2.0);
        assert_eq!(sums[1].mean_improvement, 8.0);
    }

    #[test]
    fn canonical_json_is_valid_and_excludes_timings() {
        let report = sample_report();
        let canonical = report.canonical_json();
        let v = Json::parse(&canonical).unwrap();
        assert_eq!(v.get("jobs_completed").unwrap().as_usize(), Some(4));
        assert!(v.get("timings").is_none());
        assert_eq!(v.get("results").unwrap().as_arr().unwrap().len(), 4);
        // Timed form parses too and carries the section.
        let timed = report.json(true);
        assert!(Json::parse(&timed).unwrap().get("timings").is_some());
        // Canonical form is independent of timing data.
        let mut with_walls = report.clone();
        with_walls.job_wall_s = vec![Some(1.0); 4];
        with_walls.wall_s = Some(9.0);
        assert_eq!(with_walls.canonical_json(), canonical);
    }

    #[test]
    fn quarantined_records_are_excluded_from_aggregates() {
        let spec = CampaignSpec::example();
        let mut bad = record(2, 0.0, 0);
        bad.quarantined = true;
        bad.fault = "injected fault: fleet.job.panic".into();
        bad.nb = 0;
        bad.yield_baseline = 0.0;
        bad.yield_with_buffers = 0.0;
        bad.improvement = 0.0;
        let records = vec![record(0, 0.0, 3), record(1, 2.0, 2), bad, record(3, 2.0, 1)];
        let report = CampaignReport::from_records(&spec, records);
        assert_eq!(report.quarantined().len(), 1);
        let sums = report.sigma_summaries();
        // k=0 now aggregates ONE healthy job; the zeroed quarantined
        // record must not drag the mean to half.
        assert_eq!(sums[0].jobs, 1);
        assert_eq!(sums[0].mean_yield_baseline, 50.0);
        assert_eq!(sums[0].total_buffers, 3);
        let text = report.text();
        assert!(text.contains("quarantined jobs (excluded from aggregates):"));
        assert!(text.contains("injected fault: fleet.job.panic"));
        let json = report.canonical_json();
        let v = Json::parse(&json).unwrap();
        assert_eq!(v.get("jobs_quarantined").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn text_report_renders_rows_and_aggregates() {
        let report = sample_report();
        let text = report.text();
        assert!(text.contains("4/4 jobs complete"));
        assert!(text.contains("| 0 | tiny_demo:1 |"));
        assert!(text.contains("per-sigma aggregates:"));
        assert!(text.contains("k=0:"));
    }
}
