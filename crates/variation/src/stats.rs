//! Sample statistics used throughout the insertion flow.
//!
//! Includes the integer-valued [`Histogram`] with the sliding-window query
//! the paper's step III-A4 needs (find the range window of width τ covering
//! the most tuning values, constrained to contain zero).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for an empty slice.
///
/// ```
/// assert_eq!(psbi_variation::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator); `0.0` for fewer than two
/// points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
///
/// ```
/// let s = psbi_variation::stats::stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((s - 2.138).abs() < 1e-3);
/// ```
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile of **unsorted** data; clamps `q` to
/// `[0, 1]`.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty data");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either sample is (numerically) constant — in the flow
/// this means "never grouped", the conservative choice.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// let r = psbi_variation::stats::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for i in 0..a.len() {
        let da = a[i] - ma;
        let db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    let denom = (saa * sbb).sqrt();
    if denom < 1e-300 {
        0.0
    } else {
        (sab / denom).clamp(-1.0, 1.0)
    }
}

/// Five-number style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum observation (`0.0` when empty).
    pub min: f64,
    /// Maximum observation (`0.0` when empty).
    pub max: f64,
}

impl Summary {
    /// Summarises a sample.
    ///
    /// ```
    /// let s = psbi_variation::Summary::of(&[1.0, 3.0]);
    /// assert_eq!((s.n, s.min, s.max), (2, 1.0, 3.0));
    /// ```
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Self {
            n: xs.len(),
            mean: mean(xs),
            std: stddev(xs),
            min,
            max,
        }
    }
}

/// Histogram over integer values (buffer tuning steps).
///
/// Occurrence counts are kept per integer value; the paper's window
/// assignment (Fig. 5b) slides a window of fixed width along this histogram
/// and picks the position covering the most occurrences.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Histogram {
    counts: std::collections::BTreeMap<i64, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from raw values.
    ///
    /// ```
    /// use psbi_variation::Histogram;
    /// let h = Histogram::from_values([1, 1, 2].into_iter());
    /// assert_eq!(h.count(1), 2);
    /// ```
    pub fn from_values<I: Iterator<Item = i64>>(values: I) -> Self {
        let mut h = Self::new();
        for v in values {
            h.add(v);
        }
        h
    }

    /// Records one occurrence of `value`.
    pub fn add(&mut self, value: i64) {
        *self.counts.entry(value).or_insert(0) += 1;
    }

    /// Records `n` occurrences of `value`.
    pub fn add_n(&mut self, value: i64, n: u64) {
        if n > 0 {
            *self.counts.entry(value).or_insert(0) += n;
        }
    }

    /// Occurrences of exactly `value`.
    pub fn count(&self, value: i64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total number of recorded occurrences.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct recorded values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Smallest and largest recorded values, if any.
    pub fn range(&self) -> Option<(i64, i64)> {
        let lo = self.counts.keys().next()?;
        let hi = self.counts.keys().next_back()?;
        Some((*lo, *hi))
    }

    /// Occurrences with value in the inclusive window `[lo, lo + width]`.
    pub fn count_in_window(&self, lo: i64, width: i64) -> u64 {
        self.counts.range(lo..=lo + width).map(|(_, c)| *c).sum()
    }

    /// Iterates `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(v, c)| (*v, *c))
    }

    /// Finds the window `[r, r + width]` covering the most occurrences
    /// (paper step III-A4).
    ///
    /// When `must_contain_zero` is set (constraint (13) of the paper) only
    /// positions with `r ≤ 0 ≤ r + width` are considered.  Ties are broken
    /// toward the window whose lower bound has the smallest magnitude, then
    /// toward the smaller bound, making the result deterministic.
    ///
    /// Returns `(r, covered)`; an empty histogram yields `(−width.min(0), 0)`
    /// i.e. a zero-anchored window.
    pub fn best_window(&self, width: i64, must_contain_zero: bool) -> (i64, u64) {
        assert!(width >= 0, "window width must be >= 0");
        let mut candidates: Vec<i64> = Vec::new();
        // Candidate lower bounds: each occupied value as the window's left
        // edge, and each occupied value as the window's right edge.
        for &v in self.counts.keys() {
            candidates.push(v);
            candidates.push(v - width);
        }
        if must_contain_zero {
            candidates.retain(|&r| r <= 0 && r + width >= 0);
            candidates.push(0.min(-width));
            candidates.push(0);
            candidates.retain(|&r| r <= 0 && r + width >= 0);
        }
        if candidates.is_empty() {
            candidates.push(0.min(-width));
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut best_r = candidates[0];
        let mut best_c = self.count_in_window(best_r, width);
        for &r in &candidates[1..] {
            let c = self.count_in_window(r, width);
            let better = c > best_c
                || (c == best_c
                    && (r.abs() < best_r.abs() || (r.abs() == best_r.abs() && r < best_r)));
            if better {
                best_r = r;
                best_c = c;
            }
        }
        (best_r, best_c)
    }
}

impl FromIterator<i64> for Histogram {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        Self::from_values(iter.into_iter())
    }
}

impl Extend<i64> for Histogram {
    fn extend<T: IntoIterator<Item = i64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn pearson_known_cases() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        // Independent-ish data: |r| < 1.
        let r = pearson(&[1.0, 2.0, 3.0, 4.0], &[1.0, 3.0, 2.0, 4.0]);
        assert!(r > 0.0 && r < 1.0);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        h.add(3);
        h.add(3);
        h.add(-1);
        h.add_n(7, 4);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.total(), 7);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.range(), Some((-1, 7)));
        assert_eq!(h.count_in_window(0, 5), 2); // only the 3s
        assert_eq!(h.count_in_window(3, 4), 6); // 3s + 7s
    }

    #[test]
    fn best_window_prefers_densest_region() {
        // Mass at 5..=8, a stray at -4.
        let h: Histogram = [5, 5, 6, 7, 8, 8, 8, -4].into_iter().collect();
        let (r, covered) = h.best_window(3, false);
        assert_eq!(r, 5);
        assert_eq!(covered, 7);
    }

    #[test]
    fn best_window_zero_constrained() {
        // Dense mass at 8..=10 but the window must contain 0 with width 6:
        // r in [-6, 0], so the best reachable coverage is values ≤ 6.
        let h: Histogram = [8, 8, 9, 10, 2, 3, -1].into_iter().collect();
        let (r, covered) = h.best_window(6, true);
        assert!(r <= 0 && r + 6 >= 0);
        assert_eq!(covered, 3); // {2, 3, -1}
        assert_eq!(r, -1);
    }

    #[test]
    fn best_window_empty_histogram() {
        let h = Histogram::new();
        let (r, covered) = h.best_window(5, true);
        assert_eq!(covered, 0);
        assert!(r <= 0 && r + 5 >= 0);
    }

    #[test]
    fn best_window_tie_breaks_toward_zero() {
        let h: Histogram = [-3, 3].into_iter().collect();
        // width 1 window can cover exactly one of the two; tie-break should
        // pick the bound with the smallest magnitude subject to r<=0<=r+1.
        let (r, covered) = h.best_window(1, true);
        assert_eq!(covered, 0); // neither -3 nor 3 reachable with width 1 containing 0
        assert_eq!(r, 0);
        let (r2, c2) = h.best_window(3, true);
        assert_eq!(c2, 1);
        // [-3,0] and [0,3] both cover one value; tie-break picks |r| = 0.
        assert_eq!(r2, 0);
    }

    #[test]
    fn histogram_extend_and_collect() {
        let mut h: Histogram = [1, 2].into_iter().collect();
        h.extend([2, 3]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(2), 2);
    }
}
