//! Minimal JSON reader/writer for campaign specs, journals and reports.
//!
//! The build environment vendors a no-op `serde` shim (see `vendor/serde`),
//! so the fleet crate carries its own small JSON layer: a recursive-descent
//! parser into a [`Json`] tree plus string-building write helpers.  Two
//! properties matter here and drove the design:
//!
//! * **Numbers keep their source text.**  [`Json::Num`] stores the raw
//!   token, so `u64` seeds beyond 2^53 and shortest-round-trip `f64`s are
//!   re-extracted exactly — nothing is funnelled through a lossy `f64`.
//! * **Writing is deterministic.**  Emission helpers produce a stable key
//!   order and Rust's shortest-round-trip float formatting, which is what
//!   makes journal records and canonical reports byte-reproducible.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64` (integral numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `usize` (integral numbers only).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(format!("bad number at byte {start}"));
    }
    Ok(Json::Num(raw.to_string()))
}

/// Reads the four hex digits of a `\u` escape starting at `start`.
fn read_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
    let hex = bytes.get(start..start + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad utf8")?, 16)
        .map_err(|_| "bad \\u escape".to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = read_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let mut code = hi;
                        if (0xD800..0xDC00).contains(&hi)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            // JSON encodes astral characters as a UTF-16
                            // surrogate pair of \u escapes.
                            if let Ok(lo) = read_hex4(bytes, *pos + 3) {
                                if (0xDC00..0xE000).contains(&lo) {
                                    *pos += 6;
                                    code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                }
                            }
                        }
                        // Unpaired surrogates have no scalar value; they
                        // degrade to U+FFFD rather than failing the parse.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf8")?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escapes `s` as JSON string contents (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` deterministically: Rust's shortest round-trip decimal,
/// which `str::parse::<f64>` recovers bit-exactly.  Non-finite values have
/// no JSON form and must not occur in records; they map to `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn numbers_keep_full_precision() {
        let v = Json::parse(r#"{"seed": 18446744073709551615, "x": 0.1}"#).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(0.1));
    }

    #[test]
    fn f64_round_trips_through_text() {
        for v in [0.0, 1.0 / 3.0, 123456.789, 1e-12, -0.125, f64::MAX] {
            let text = fmt_f64(v);
            assert_eq!(text.parse::<f64>().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_chars() {
        // The standard JSON encoding of non-BMP characters (what
        // json.dumps / jq emit): a \u surrogate pair.
        let v = Json::parse(r#"{"name": "\ud83d\ude00!"}"#).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("\u{1F600}!"));
        // Literal (already-UTF-8) astral characters pass through too.
        let v = Json::parse("{\"name\": \"\u{1F600}\"}").unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("\u{1F600}"));
        // An unpaired high surrogate degrades to U+FFFD, not an error.
        let v = Json::parse(r#"{"k": "\ud83dx"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("\u{fffd}x"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }
}
