//! The end-to-end buffer-insertion flow (paper Fig. 3).
//!
//! ```text
//! circuit, statistical gate delays, buffer spec, target T
//!   │ calibrate µT, σT (unbuffered Monte Carlo)
//!   ├─ step 1: min-count pass (III-A1) → prune (III-A2)
//!   │          → push-to-zero pass (III-A3) → window assignment (III-A4)
//!   ├─ step 2: optional refit pass (III-B1, skipped when misses < 0.1 %)
//!   │          → concentrate-to-average pass (III-B2) → final ranges
//!   ├─ step 3: grouping by correlation & distance (III-C) → cap
//!   └─ yield evaluation on a fresh sample stream
//! ```
//!
//! # Execution model
//!
//! All passes run the *same* deterministic chip population: chip `k` draws
//! from an RNG keyed by `(stream, k)` alone.  The sample stream is cut
//! into fixed-size chunks; each chunk is drawn into a structure-of-arrays
//! [`psbi_timing::SampleBatch`], its constraints are extracted into a
//! [`psbi_timing::ConstraintBatch`], and the per-chip solves run over the
//! batch rows.  The draw and bound-extraction kernels run wide (AVX2 /
//! NEON / portable lanes) on the process-wide [`psbi_timing::simd`]
//! backend; every backend is bit-identical to the scalar reference
//! (`PSBI_FORCE_SCALAR=1`), so kernel choice never affects results.
//! Chunks are distributed over a rayon-style work-stealing
//! parallel iterator (idle workers claim the next unprocessed chunk), and
//! every worker draws its solver/batch workspaces from a shared pool that
//! is reused across *all* passes of the flow — steady state performs no
//! per-chip allocation.
//!
//! Because chunk boundaries are fixed (independent of the thread count),
//! chunk results are merged in chunk order, and each chip is seeded by its
//! global index, the flow is **bit-reproducible for any thread count** —
//! including `RAYON_NUM_THREADS=1` versus all cores.  The
//! `deterministic_across_thread_counts` unit test and the
//! `determinism` integration test pin this guarantee.

use crate::group::{group_buffers, BufferCandidate, Group, GroupConfig};
use crate::prune::{prune, PruneConfig, PruneReport};
use crate::solve::{
    BufferSpace, ChipSolveState, PassDiagnostics, PushObjective, RegionMemo, SampleResult,
    SampleSolver, SolveRequest, SolverOptions,
};
use crate::yield_eval::{Deployment, YieldReport};
use psbi_liberty::Library;
use psbi_netlist::{Circuit, NetlistError, Placement, SkewConfig};
use psbi_timing::feasibility::{Arc as TimingArc, DiffSolver};
use psbi_timing::graph::TimingGraph;
use psbi_timing::sample::{CanonicalBatchSampler, GateLevelSampler, SampleBatch, SampleTiming};
use psbi_timing::{constraint, ConstraintBatch, IntegerConstraints, SequentialGraph};
use psbi_variation::seeding::stream_seed;
use psbi_variation::{Histogram, VariationModel};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Samples per parallel work unit.  Fixed (not derived from the thread
/// count) so results are independent of parallelism; small enough to
/// load-balance well, large enough to amortise workspace checkout.
const SAMPLE_CHUNK: usize = 64;

/// How the target clock period is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetPeriod {
    /// `T = µT + k·σT` where µT/σT come from the unbuffered calibration
    /// run.  The paper evaluates `k ∈ {0, 1, 2}` (yields ≈ 50 / 84 / 98 %).
    SigmaFactor(f64),
    /// An absolute period in picoseconds.
    Absolute(f64),
}

/// Flow configuration; the defaults mirror the paper's experimental setup
/// except for the sample counts, which are sized for interactive runs
/// (raise [`FlowConfig::samples`] to 10 000 to match the paper exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Monte-Carlo samples driving insertion (paper: 10 000).
    pub samples: usize,
    /// Fresh samples for yield evaluation.
    pub yield_samples: usize,
    /// Samples for the µT/σT calibration run.
    pub calibration_samples: usize,
    /// Master seed; all streams derive from it.
    pub seed: u64,
    /// Target clock period.
    pub target: TargetPeriod,
    /// Discrete tuning steps per buffer (paper: 20).
    pub steps: u32,
    /// Maximum buffer range as a fraction of the clock period (paper: 1/8).
    pub range_fraction: f64,
    /// Pruning thresholds (paper: remove ≤1 unless neighbour ≥5 @10 000).
    pub prune: PruneConfig,
    /// Step-2 refit is skipped when fewer than this fraction of samples
    /// have tunings outside the assigned windows (paper: 0.1 %).
    pub skip_refit_threshold: f64,
    /// Grouping thresholds (paper: r ≥ 0.8, distance ≤ 10× spacing).
    pub grouping: GroupConfig,
    /// Enable the push-to-zero / concentrate-to-average objectives
    /// (disable for ablation A1).
    pub concentrate: bool,
    /// Keep zero inside the final windows, so untouched chips can always
    /// stay untouched (the paper's constraint (13) requires the assigned
    /// range window to contain 0 in both steps; disabling this is ablation
    /// A4 and can *reduce* yield at relaxed targets).
    pub force_zero_in_range: bool,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Use exact gate-level sampling instead of canonical edge forms
    /// (ablation A3; much slower).
    pub gate_level_sampling: bool,
    /// Per-sample solver limits.
    pub solver: SolverOptions,
    /// Clock-skew generator; `None` scales to the circuit's mean stage
    /// delay as in §IV ("we also added clock skews").
    pub skew: Option<SkewConfig>,
    /// Record per-stage histograms for this many most-used buffers
    /// (regenerates the paper's Fig. 5).
    pub record_histograms: usize,
    /// Carry per-chip solver state (region decompositions, support sets,
    /// warm witnesses) across the A1→A3→B1→B2 passes and across
    /// `run_target` calls.  Results are bit-identical either way — reuse
    /// is a verified fast path (see [`crate::solve`]) — so this is purely
    /// a performance knob.  The `PSBI_NO_INCREMENTAL=1` environment
    /// variable force-disables it process-wide regardless of this flag.
    pub incremental: bool,
    /// Dedup identical region subproblems **across chips** through a
    /// flow-level memo table keyed by the exact value of the
    /// saturation-normalised region system (see
    /// [`crate::solve::RegionMemo`]).  Like [`FlowConfig::incremental`]
    /// this is purely a performance knob — a memo hit is a verified
    /// replay of a pure function, so results are bit-identical either
    /// way; `PSBI_NO_CROSSCHIP=1` force-disables it process-wide.
    pub cross_chip: bool,
    /// Re-check the final [`InsertionResult`] with [`crate::verify`]: an
    /// independent pass that re-validates every sampled chip's claimed
    /// fixability and the reported yields against the raw un-elided
    /// constraint system — no memo, no per-chip state, no saturation
    /// elision, no warm witnesses.  The structured
    /// [`crate::verify::VerifyReport`] lands in
    /// [`FlowDiagnostics::verify`]; canonical outputs are untouched.
    /// Roughly doubles a run's cost (it re-solves both sample streams
    /// cold).  `PSBI_VERIFY=1` force-enables it process-wide.
    pub verify: bool,
    /// Fan each chip's independent region searches out across a worker
    /// pool sized like [`FlowConfig::threads`] (active only when that
    /// width is ≥ 2).  Region searching is a pure function committed in
    /// pinned region order (see [`crate::solve`]), so results are
    /// bit-identical either way — purely a performance knob.
    /// `PSBI_NO_REGION_PARALLEL=1` force-disables it process-wide.
    pub region_parallel: bool,
    /// Prune the per-region support search with dominance elimination,
    /// symmetry breaking and bitset covering bounds (see
    /// [`crate::solve`]'s search module).  Every rule provably preserves
    /// the pinned tie-break order, so results are bit-identical either
    /// way — purely a performance knob; `PSBI_NO_SEARCH_PRUNE=1`
    /// force-disables it process-wide (the byte-parity reference mode).
    pub search_prune: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            samples: 2_000,
            yield_samples: 4_000,
            calibration_samples: 2_000,
            seed: 42,
            target: TargetPeriod::SigmaFactor(0.0),
            steps: 20,
            range_fraction: 1.0 / 8.0,
            prune: PruneConfig::default(),
            skip_refit_threshold: 0.001,
            grouping: GroupConfig::default(),
            concentrate: true,
            force_zero_in_range: true,
            threads: 0,
            gate_level_sampling: false,
            solver: SolverOptions::default(),
            skew: None,
            record_histograms: 0,
            incremental: true,
            cross_chip: true,
            verify: false,
            region_parallel: true,
            search_prune: true,
        }
    }
}

impl FlowConfig {
    /// The default configuration with every `PSBI_*` process toggle
    /// folded into the corresponding field — the one documented place
    /// the environment surface is read:
    ///
    /// | Variable                 | Field                          | Polarity |
    /// |--------------------------|--------------------------------|----------|
    /// | `PSBI_NO_INCREMENTAL`    | [`FlowConfig::incremental`]    | disables |
    /// | `PSBI_NO_CROSSCHIP`      | [`FlowConfig::cross_chip`]     | disables |
    /// | `PSBI_NO_REGION_PARALLEL`| [`FlowConfig::region_parallel`]| disables |
    /// | `PSBI_NO_SEARCH_PRUNE`   | [`FlowConfig::search_prune`]   | disables |
    /// | `PSBI_VERIFY`            | [`FlowConfig::verify`]         | enables  |
    ///
    /// For the `PSBI_NO_*` hatches any value other than empty or `0`
    /// counts as set; `PSBI_VERIFY` has the opposite polarity.  The same
    /// toggles are *also* applied when a flow is built from a
    /// hand-constructed configuration (each is read once per process, so
    /// an escape hatch always wins over the corresponding field) — this
    /// constructor just makes the env-derived values visible in the
    /// config itself.
    pub fn from_env() -> Self {
        Self {
            incremental: incremental_env_enabled(),
            cross_chip: cross_chip_env_enabled(),
            verify: verify_env_enabled(),
            region_parallel: region_parallel_env_enabled(),
            search_prune: search_prune_env_enabled(),
            ..Self::default()
        }
    }
}

/// Process-wide `PSBI_NO_INCREMENTAL` escape hatch, read once (mirroring
/// `PSBI_FORCE_SCALAR` in [`psbi_timing::simd`]): any value other than
/// empty or `0` disables cross-pass solver-state reuse everywhere.
fn incremental_env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        !std::env::var("PSBI_NO_INCREMENTAL").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Process-wide `PSBI_NO_CROSSCHIP` escape hatch, read once: any value
/// other than empty or `0` disables the cross-chip region memo
/// everywhere.  Independent of `PSBI_NO_INCREMENTAL` — the per-chip
/// arenas and the cross-chip memo are separate cache tiers.
fn cross_chip_env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| !std::env::var("PSBI_NO_CROSSCHIP").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Process-wide `PSBI_NO_REGION_PARALLEL` escape hatch, read once: any
/// value other than empty or `0` keeps every chip's region searches on
/// the calling worker thread (see [`FlowConfig::region_parallel`]).
fn region_parallel_env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        !std::env::var("PSBI_NO_REGION_PARALLEL").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Process-wide `PSBI_NO_SEARCH_PRUNE` escape hatch, read once: any value
/// other than empty or `0` reverts every region search to the unpruned
/// reference branch and bound (see [`FlowConfig::search_prune`]).
fn search_prune_env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        !std::env::var("PSBI_NO_SEARCH_PRUNE").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Process-wide `PSBI_VERIFY` switch, read once.  Opposite polarity to the
/// escape hatches above: any value other than empty or `0` force-*enables*
/// the independent result verifier regardless of [`FlowConfig::verify`].
fn verify_env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("PSBI_VERIFY").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Errors raised when building a flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The circuit failed validation.
    Netlist(NetlistError),
    /// The circuit has no register-to-register timing paths.
    NoSequentialPaths,
    /// A configuration value is out of range.
    Config(String),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::NoSequentialPaths => write!(f, "circuit has no sequential timing paths"),
            FlowError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

/// Per-stage wall-clock times in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RuntimeBreakdown {
    /// µT/σT calibration.
    pub calibration_s: f64,
    /// Step 1 (A1 + prune + A3 + windows).
    pub step1_s: f64,
    /// Step 2 (refit + concentrate + ranges).
    pub step2_s: f64,
    /// Step 3 (grouping + cap).
    pub step3_s: f64,
    /// Yield evaluation.
    pub yield_s: f64,
    /// Whole flow.
    pub total_s: f64,
    /// The min-count pass alone (III-A1; cold within a target — its state
    /// can only replay from a *previous target* of a sweep).
    pub pass_a1_s: f64,
    /// The push-to-zero pass alone (III-A3).
    pub pass_a3_s: f64,
    /// The refit pass alone (III-B1; 0 when skipped).
    pub pass_b1_s: f64,
    /// The concentrate pass alone (III-B2).
    pub pass_b2_s: f64,
}

/// Per-pass incremental-cache counters of one flow run (see
/// [`PassDiagnostics`]).  Deterministic for a fixed flow/arena history but
/// **non-canonical**: the counters differ between incremental and
/// `PSBI_NO_INCREMENTAL=1` runs (and, across a fleet sweep, with the
/// order targets reached a shared flow), so they are quarantined from
/// journals and canonical reports exactly like wall-clock times.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowDiagnostics {
    /// The A1 min-count pass.
    pub a1: PassDiagnostics,
    /// The A3 push-to-zero pass.
    pub a3: PassDiagnostics,
    /// The B1 refit pass (zero when the refit was skipped).
    pub b1: PassDiagnostics,
    /// The B2 concentrate pass.
    pub b2: PassDiagnostics,
    /// Distinct region systems in this flow's cross-chip memo table at
    /// the end of the run (0 when the memo is disabled).
    pub memo_entries: u64,
    /// Pool-wide chip-state slots resident after this run parked its
    /// arenas — what a campaign pays to keep this pool's warm state.
    pub resident_states: u64,
    /// Pool-wide peak of [`FlowDiagnostics::resident_states`] so far —
    /// with per-circuit reclamation (see
    /// [`BufferInsertionFlow::release_solver_state`]) this stays capped
    /// at the concurrently active flows instead of growing with every
    /// circuit a campaign ever touched.
    pub peak_resident_states: u64,
    /// Report of the independent result verifier, when it ran
    /// ([`FlowConfig::verify`] or `PSBI_VERIFY=1`).  Like every other
    /// diagnostic it never feeds back into canonical outputs.
    pub verify: Option<crate::verify::VerifyReport>,
}

impl FlowDiagnostics {
    /// Counters summed over all four passes.
    pub fn total(&self) -> PassDiagnostics {
        let mut total = self.a1;
        total.merge(&self.a3);
        total.merge(&self.b1);
        total.merge(&self.b2);
        total
    }
}

/// Diagnostic counters from the sampling passes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageStats {
    /// Samples unfixable in the A1 pass (even with every buffer).
    pub a1_infeasible: u64,
    /// Samples unfixable in the final pass (fixed windows).
    pub b2_infeasible: u64,
    /// Samples solved approximately (node caps hit).
    pub inexact_samples: u64,
    /// Fraction of samples with tunings outside the assigned windows.
    pub miss_fraction: f64,
    /// Whether the step-2 refit pass ran (miss fraction ≥ threshold).
    pub refit_ran: bool,
    /// Total nonzero tunings in the A1 pass.
    pub a1_total_tunings: u64,
    /// Fraction of calibration samples with unbuffered hold violations.
    pub hold_fail_fraction: f64,
}

/// Histogram snapshots of one buffer across stages (paper Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferSnapshot {
    /// Flip-flop index.
    pub ff: usize,
    /// Tuning histogram after the min-count pass (scattered — Fig. 5a).
    pub scattered: Vec<(i64, u64)>,
    /// Histogram after push-to-zero (Fig. 5b).
    pub pushed: Vec<(i64, u64)>,
    /// Assigned window (Fig. 5b).
    pub window: (i64, i64),
    /// Histogram after concentration toward the average (Fig. 5c).
    pub concentrated: Vec<(i64, u64)>,
    /// Final reduced range (Fig. 5c).
    pub final_range: (i64, i64),
}

/// Everything the flow produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertionResult {
    /// Circuit name.
    pub circuit: String,
    /// Flip-flop count.
    pub n_ffs: usize,
    /// Gate count.
    pub n_gates: usize,
    /// Calibrated mean of the unbuffered minimum period (ps).
    pub mu_t: f64,
    /// Calibrated std-dev of the unbuffered minimum period (ps).
    pub sigma_t: f64,
    /// Target clock period used (ps).
    pub period: f64,
    /// Buffer step δ (ps).
    pub step: f64,
    /// Number of physical buffers inserted (paper's `Nb`).
    pub nb: usize,
    /// Average buffer range in steps (paper's `Ab`).
    pub ab: f64,
    /// Yield without buffers at `period` (paper's `Yo`), in percent.
    pub yield_baseline: f64,
    /// Yield with buffers (paper's `Y`), in percent.
    pub yield_with_buffers: f64,
    /// Improvement `Y − Yo` in percentage points (paper's `Yi`).
    pub improvement: f64,
    /// Chips rescued / broken by the buffers in the evaluation stream.
    pub rescued: usize,
    /// Chips passing baseline but failing with buffers (windows without 0).
    pub broken: usize,
    /// Final physical buffers.
    pub groups: Vec<Group>,
    /// Final deployment (for configuration / further evaluation).
    pub deployment: Deployment,
    /// Pruning outcome.
    pub prune: PruneReport,
    /// Grouping statistics.
    pub correlated_pairs: usize,
    /// Pairs merged (correlation and distance both passed).
    pub merged_pairs: usize,
    /// Buffer count before grouping.
    pub buffers_before_grouping: usize,
    /// Sampling diagnostics.
    pub stats: StageStats,
    /// Fig. 5 snapshots (when requested).
    pub snapshots: Vec<BufferSnapshot>,
    /// Wall-clock times.
    pub runtime: RuntimeBreakdown,
    /// Incremental-cache counters per pass (non-canonical, like
    /// [`InsertionResult::runtime`] — see [`FlowDiagnostics`]).
    pub diagnostics: FlowDiagnostics,
}

impl InsertionResult {
    /// Buffer area estimate following the paper's Fig. 1 structure.
    pub fn area(&self) -> crate::area::AreaReport {
        crate::area::AreaReport::of(&self.groups, 20)
    }
}

/// One worker's reusable state: SoA batches, constraint rows, the
/// per-sample solver with its scratch, and the yield evaluator's
/// warm-started feasibility solver.  Checked out of the flow's
/// [`WorkspacePool`] per chunk and returned afterwards, so a handful of
/// workspaces (one per concurrently active worker) serve the entire flow.
#[derive(Default)]
pub(crate) struct Workspace {
    batch: SampleBatch,
    cons: ConstraintBatch,
    solver: SampleSolver,
    diff: DiffSolver,
    arcs: Vec<TimingArc>,
    gls: Option<GateLevelSampler>,
}

/// Chip-indexed arena of persistent [`ChipSolveState`]s — the incremental
/// cache one `run_target` call threads through its four sampling passes,
/// and (via the [`WorkspacePool`]) across adjacent targets of a sweep.
///
/// Access follows the same disjoint-slot discipline as [`DisjointSlots`]:
/// a pass's chunk `c` exclusively owns states `c·SAMPLE_CHUNK ..`, chunks
/// are claimed by exactly one worker, and passes run sequentially, so no
/// state is ever touched by two threads at once.  Unlike worker
/// workspaces, arenas are *owner-keyed*: an arena checked out by flow `F`
/// is only ever handed back to flow `F`, so a cached region can never be
/// replayed against a different circuit's graph — the per-chip
/// invalidation keys (see [`crate::solve`]) then cover everything that can
/// change within one flow.
pub struct SolveStateArena {
    /// The flow instance this arena belongs to.
    owner: u64,
    states: Vec<UnsafeCell<ChipSolveState>>,
}

// SAFETY: callers uphold the chunk-ownership contract documented above —
// no state index is accessed by more than one thread at a time.
unsafe impl Sync for SolveStateArena {}

impl SolveStateArena {
    fn new(owner: u64) -> Self {
        Self {
            owner,
            states: Vec::new(),
        }
    }

    /// Grows the arena to at least `n` chip slots (states persist).
    fn ensure(&mut self, n: usize) {
        if self.states.len() < n {
            self.states.resize_with(n, UnsafeCell::default);
        }
    }

    /// Mutable access to chip `i`'s state.
    ///
    /// # Safety
    /// `i` must be owned exclusively by the calling worker for the
    /// duration of the borrow (the chunk-ownership contract).
    #[allow(clippy::mut_from_ref)]
    unsafe fn state_mut(&self, i: usize) -> &mut ChipSolveState {
        unsafe { &mut *self.states[i].get() }
    }
}

/// Lock-protected free list of [`Workspace`]s shared by all passes — and,
/// when shared via [`BufferInsertionFlow::with_shared_pool`], by all flows
/// of a multi-circuit campaign (workspaces are resized on checkout, so one
/// pool serves circuits of different sizes).  The pool also parks the
/// flows' per-chip [`SolveStateArena`]s between `run_target` calls, which
/// is what carries incremental solver state across adjacent targets of a
/// campaign sweep.
///
/// Checkout order is unspecified (workers race for the list), which is
/// safe because workspaces carry no chip-dependent state that affects
/// results — solver scratch is overwritten per chip and the warm-start
/// witness cache is only ever *validated*, never trusted.  State arenas
/// are different: they *are* chip-keyed, so they are owner-keyed to one
/// flow and their contents only ever enable verified replays.  This
/// free-list lock is the one remaining `Mutex` on the chunk path; it
/// guards *checkout*, not result merging (chunk results are written to
/// pre-sized per-index slots or folded in chunk order — see
/// [`DisjointSlots`]).
#[derive(Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<Workspace>>,
    /// Parked incremental-state arenas, checked out per `run_target` call.
    state_arenas: Mutex<Vec<SolveStateArena>>,
    /// Cross-chip region memo tables, one per owner flow.  `Arc`-shared
    /// (not checked out): concurrent `run_target` calls of one flow read
    /// and publish into the same table.
    region_memos: Mutex<Vec<(u64, Arc<RegionMemo>)>>,
    /// Chip-state slots currently resident in this pool's arenas
    /// (parked or checked out) — the memory-cap observability counter.
    resident_states: AtomicU64,
    /// All-time peak of `resident_states`.
    peak_resident_states: AtomicU64,
}

/// Recovers a poisoned pool lock.  Pool locks only guard checkout of
/// self-contained values (free lists, parked arenas, memo handles) — a
/// worker that panicked *while holding* one of them can at worst have
/// popped an entry that is now lost, never leave one half-updated — so
/// the data is consistent and the campaign can keep draining jobs
/// instead of wedging on `PoisonError`.
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl WorkspacePool {
    /// An empty pool; workspaces are created lazily on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a pooled workspace (creating one on first use).
    fn run<R>(&self, f: impl FnOnce(&mut Workspace) -> R) -> R {
        psbi_obs::metrics::counter_add("pool.checkouts", 1);
        let mut ws = match recover(self.free.lock()).pop() {
            Some(ws) => ws,
            None => {
                // Schedule-dependent (how many workers ever overlapped),
                // so excluded from metric-determinism tests.
                psbi_obs::metrics::counter_add("pool.workspace.created", 1);
                Workspace::default()
            }
        };
        if psbi_fault::failpoint!("pool.checkout.panic") {
            panic!("injected fault: pool.checkout.panic");
        }
        let result = f(&mut ws);
        recover(self.free.lock()).push(ws);
        result
    }

    /// Checks out `owner`'s parked state arena (or a fresh one), sized for
    /// `samples` chips.  Concurrent `run_target` calls on one flow simply
    /// get distinct arenas — warm-state hit rates may vary with
    /// scheduling, results never do.
    fn checkout_state_arena(&self, owner: u64, samples: usize) -> SolveStateArena {
        let mut parked = recover(self.state_arenas.lock());
        let mut arena = parked
            .iter()
            .position(|a| a.owner == owner)
            .map(|i| parked.swap_remove(i))
            .unwrap_or_else(|| SolveStateArena::new(owner));
        drop(parked);
        let grown = samples.saturating_sub(arena.states.len()) as u64;
        arena.ensure(samples);
        if grown > 0 {
            let now = self.resident_states.fetch_add(grown, Ordering::Relaxed) + grown;
            self.peak_resident_states.fetch_max(now, Ordering::Relaxed);
        }
        arena
    }

    /// Parks an arena for the next `run_target` call of its owner flow.
    fn return_state_arena(&self, arena: SolveStateArena) {
        recover(self.state_arenas.lock()).push(arena);
    }

    /// The shared cross-chip memo table of `owner` (created on first use).
    fn checkout_region_memo(&self, owner: u64) -> Arc<RegionMemo> {
        let mut memos = recover(self.region_memos.lock());
        match memos.iter().find(|(id, _)| *id == owner) {
            Some((_, memo)) => Arc::clone(memo),
            None => {
                let memo = Arc::new(RegionMemo::new());
                memos.push((owner, Arc::clone(&memo)));
                memo
            }
        }
    }

    /// Frees every incremental artefact parked for arena owner
    /// `arena_owner` — its per-chip state arenas *and* its cross-chip
    /// memo epoch.  Campaign runners call this (via
    /// [`BufferInsertionFlow::release_solver_state`]) once a flow's last
    /// sweep target has committed, capping the pool's peak resident
    /// state at the concurrently active flows.  Must not race a
    /// `run_target` call of the same flow: a concurrent call would park
    /// its arena *after* the release and resurrect the state.
    fn release_owner(&self, arena_owner: u64) {
        let mut freed = 0u64;
        let mut parked = recover(self.state_arenas.lock());
        parked.retain(|a| {
            let owned = a.owner == 2 * arena_owner || a.owner == 2 * arena_owner + 1;
            if owned {
                freed += a.states.len() as u64;
            }
            !owned
        });
        drop(parked);
        if freed > 0 {
            self.resident_states.fetch_sub(freed, Ordering::Relaxed);
        }
        recover(self.region_memos.lock()).retain(|(id, _)| *id != arena_owner);
    }

    /// Chip-state slots currently resident in this pool's arenas.
    pub fn resident_states(&self) -> u64 {
        self.resident_states.load(Ordering::Relaxed)
    }

    /// All-time peak of [`WorkspacePool::resident_states`].
    pub fn peak_resident_states(&self) -> u64 {
        self.peak_resident_states.load(Ordering::Relaxed)
    }
}

/// Pre-sized output slots that parallel chunk workers write disjoint index
/// ranges into — the lock-free replacement for post-hoc concatenation of
/// per-chunk vectors.  Chunk `c` owns rows `c·SAMPLE_CHUNK ..` exclusively
/// (fixed boundaries, each chunk claimed by exactly one worker), so writes
/// never alias and no lock or merge pass is needed; reading the vector
/// back preserves global sample order regardless of chunk completion
/// order.
struct DisjointSlots<T> {
    cells: Vec<UnsafeCell<T>>,
}

// SAFETY: callers uphold the contract that no index is written by more
// than one worker (each chunk's row range is claimed exactly once).
unsafe impl<T: Send> Sync for DisjointSlots<T> {}

impl<T: Default + Clone> DisjointSlots<T> {
    /// `n` default-initialised slots.
    fn new(n: usize) -> Self {
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, || UnsafeCell::new(T::default()));
        Self { cells }
    }

    /// Writes slot `i`.
    ///
    /// # Safety
    /// `i` must be owned exclusively by the calling worker (no other
    /// thread may read or write it concurrently).
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { *self.cells[i].get() = value };
    }

    /// Unwraps into the ordered vector (all workers must have finished).
    fn into_vec(self) -> Vec<T> {
        self.cells.into_iter().map(|c| c.into_inner()).collect()
    }
}

/// The flow object: build once per circuit, run per target period.
pub struct BufferInsertionFlow<'a> {
    circuit: &'a Circuit,
    pub(crate) cfg: FlowConfig,
    #[allow(dead_code)]
    lib: Library,
    #[allow(dead_code)]
    model: VariationModel,
    pub(crate) tg: TimingGraph<'a>,
    pub(crate) sg: SequentialGraph,
    placement: Placement,
    pub(crate) skews: Vec<f64>,
    /// Flattened canonical coefficients for the batch sampling kernel.
    canon: CanonicalBatchSampler,
    /// Reusable worker workspaces, shared across all passes (and across
    /// flows when constructed with [`BufferInsertionFlow::with_shared_pool`]).
    pool: Arc<WorkspacePool>,
    /// Cached µT/σT calibration: it depends only on the circuit and seed,
    /// so one calibration serves every target-period sweep point.
    calibration: OnceLock<(f64, f64, f64)>,
    /// Explicit thread pool when [`FlowConfig::threads`] > 0; `None` uses
    /// the global default (respecting `RAYON_NUM_THREADS`).
    thread_pool: Option<rayon::ThreadPool>,
    /// Pool the sampling passes fan region searches out on — present only
    /// when [`FlowConfig::region_parallel`] is on (and not overridden by
    /// `PSBI_NO_REGION_PARALLEL`) and the worker width is ≥ 2, so a
    /// single-threaded flow never pays fan-out overhead.
    region_pool: Option<rayon::ThreadPool>,
    /// Unique flow identity keying this flow's state arenas in the pool
    /// (see [`SolveStateArena`]): state never migrates between flows.
    arena_id: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Push {
    CountOnly,
    ToZero,
    ToTargets,
}

/// Accumulated output of one sampling pass.
struct PassOutput {
    counts: Vec<u64>,
    hist: Vec<Histogram>,
    min_k: Vec<i64>,
    max_k: Vec<i64>,
    infeasible: u64,
    inexact: u64,
    /// Incremental-cache counters (all zero when the cache is disabled).
    diag: PassDiagnostics,
    /// Tuning value per (buffered slot, sample); recorded when requested.
    columns: Option<Vec<Vec<f32>>>,
    /// FF → slot map for `columns`.
    slot_of_ff: Vec<u32>,
    /// Per-sample feasibility claims — what the independent verifier
    /// re-checks against the raw constraint system.  Always recorded
    /// (one bool per chip).
    feasible: Vec<bool>,
}

pub(crate) const NONE: u32 = u32::MAX;

/// Chainable constructor for [`BufferInsertionFlow`] — the single place a
/// flow is assembled, replacing the former
/// `new` / `with_library` / `with_shared_pool` / `with_library_and_pool`
/// constructor ladder (which survives as deprecated one-line forwards).
///
/// ```
/// use psbi_core::{BufferInsertionFlow, FlowConfig};
///
/// let circuit = psbi_netlist::bench_suite::tiny_demo(3);
/// let flow = BufferInsertionFlow::builder(&circuit, FlowConfig::default())
///     .build()
///     .unwrap();
/// ```
pub struct FlowBuilder<'a> {
    circuit: &'a Circuit,
    cfg: FlowConfig,
    lib: Option<Library>,
    model: Option<VariationModel>,
    pool: Option<Arc<WorkspacePool>>,
}

impl<'a> FlowBuilder<'a> {
    /// Starts a builder for `circuit` under `cfg`, with the industry-like
    /// library, the paper's variation model, and a private workspace pool
    /// unless overridden.
    pub fn new(circuit: &'a Circuit, cfg: FlowConfig) -> Self {
        Self {
            circuit,
            cfg,
            lib: None,
            model: None,
            pool: None,
        }
    }

    /// Uses an explicit buffer/gate library.
    #[must_use]
    pub fn library(mut self, lib: Library) -> Self {
        self.lib = Some(lib);
        self
    }

    /// Uses an explicit process-variation model.
    #[must_use]
    pub fn model(mut self, model: VariationModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Checks worker workspaces out of an externally owned pool —
    /// campaign runners share one pool across every flow they execute, so
    /// solver scratch is reused across circuits and targets.
    #[must_use]
    pub fn pool(mut self, pool: Arc<WorkspacePool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Validates the configuration and builds the flow.
    ///
    /// # Errors
    ///
    /// Fails when the circuit is malformed, has no sequential paths, or
    /// the configuration is invalid.
    pub fn build(self) -> Result<BufferInsertionFlow<'a>, FlowError> {
        let circuit = self.circuit;
        let cfg = self.cfg;
        let lib = self.lib.unwrap_or_else(Library::industry_like);
        let model = self.model.unwrap_or_else(VariationModel::paper_defaults);
        let pool = self.pool.unwrap_or_else(|| Arc::new(WorkspacePool::new()));
        if cfg.samples == 0 || cfg.yield_samples == 0 || cfg.calibration_samples == 0 {
            return Err(FlowError::Config("sample counts must be positive".into()));
        }
        if cfg.steps == 0 {
            return Err(FlowError::Config("steps must be positive".into()));
        }
        if cfg.range_fraction.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !cfg.range_fraction.is_finite()
        {
            return Err(FlowError::Config("range_fraction must be positive".into()));
        }
        model.validate().map_err(FlowError::Config)?;
        let tg = TimingGraph::build(circuit, &lib, &model)?;
        let sg = SequentialGraph::extract(&tg);
        if sg.edges.is_empty() {
            return Err(FlowError::NoSequentialPaths);
        }
        let placement = Placement::grid(circuit, 1.0);
        let skew_cfg = cfg
            .skew
            .unwrap_or_else(|| SkewConfig::scaled_to(sg.mean_stage_delay()));
        let skews = skew_cfg.assign(circuit, stream_seed(cfg.seed, "skew"));
        let canon = CanonicalBatchSampler::new(&sg);
        let thread_pool = if cfg.threads > 0 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(cfg.threads)
                    .build()
                    .map_err(|e| FlowError::Config(format!("thread pool: {e}")))?,
            )
        } else {
            None
        };
        // The region fan-out pool exists only when it can actually help:
        // knob on, no process-wide escape hatch, and ≥ 2 workers — a
        // single-threaded flow runs every search inline, no setup cost.
        let width = if cfg.threads > 0 {
            cfg.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let region_pool = if cfg.region_parallel && region_parallel_env_enabled() && width >= 2 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(width)
                    .build()
                    .map_err(|e| FlowError::Config(format!("region pool: {e}")))?,
            )
        } else {
            None
        };
        static NEXT_ARENA_ID: AtomicU64 = AtomicU64::new(0);
        Ok(BufferInsertionFlow {
            circuit,
            cfg,
            lib,
            model,
            tg,
            sg,
            placement,
            skews,
            canon,
            pool,
            calibration: OnceLock::new(),
            thread_pool,
            region_pool,
            arena_id: NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed),
        })
    }
}

/// Request for [`BufferInsertionFlow::speed_bins`]: the deployment to
/// evaluate, the candidate bin periods (ps, ascending) and the
/// design-time buffer step from [`InsertionResult::step`].
#[derive(Debug, Clone, Copy)]
pub struct BinningRequest<'a> {
    deployment: &'a Deployment,
    periods: &'a [f64],
    step: f64,
}

impl<'a> BinningRequest<'a> {
    /// A binning request over `periods` with and without `deployment`'s
    /// buffers.
    pub fn new(deployment: &'a Deployment, periods: &'a [f64], step: f64) -> Self {
        Self {
            deployment,
            periods,
            step,
        }
    }
}

/// Request for [`BufferInsertionFlow::chip_constraints`]: one chip of a
/// named sample stream, materialised at a period/step operating point.
#[derive(Debug, Clone, Copy)]
pub struct SampleRequest<'a> {
    stream: &'a str,
    index: u64,
    period: f64,
    step: f64,
}

impl<'a> SampleRequest<'a> {
    /// Chip `index` of `stream` (e.g. `"yield"`), at target `period` (ps)
    /// with buffer step `step`.
    pub fn new(stream: &'a str, index: u64, period: f64, step: f64) -> Self {
        Self {
            stream,
            index,
            period,
            step,
        }
    }
}

impl<'a> BufferInsertionFlow<'a> {
    /// Starts a [`FlowBuilder`] — the flow's constructor surface.
    pub fn builder(circuit: &'a Circuit, cfg: FlowConfig) -> FlowBuilder<'a> {
        FlowBuilder::new(circuit, cfg)
    }

    /// Builds a flow with the default industry-like library and the paper's
    /// variation model.
    ///
    /// # Errors
    ///
    /// Fails when the circuit is malformed, has no sequential paths, or the
    /// configuration is invalid.
    #[deprecated(note = "use `BufferInsertionFlow::builder(..).build()`")]
    pub fn new(circuit: &'a Circuit, cfg: FlowConfig) -> Result<Self, FlowError> {
        FlowBuilder::new(circuit, cfg).build()
    }

    /// Builds a flow with an explicit library and variation model.
    ///
    /// # Errors
    ///
    /// As [`FlowBuilder::build`].
    #[deprecated(note = "use `BufferInsertionFlow::builder(..).library(..).model(..).build()`")]
    pub fn with_library(
        circuit: &'a Circuit,
        cfg: FlowConfig,
        lib: Library,
        model: VariationModel,
    ) -> Result<Self, FlowError> {
        FlowBuilder::new(circuit, cfg)
            .library(lib)
            .model(model)
            .build()
    }

    /// Builds a flow that checks worker workspaces out of an externally
    /// owned pool.
    ///
    /// # Errors
    ///
    /// As [`FlowBuilder::build`].
    #[deprecated(note = "use `BufferInsertionFlow::builder(..).pool(..).build()`")]
    pub fn with_shared_pool(
        circuit: &'a Circuit,
        cfg: FlowConfig,
        pool: Arc<WorkspacePool>,
    ) -> Result<Self, FlowError> {
        FlowBuilder::new(circuit, cfg).pool(pool).build()
    }

    /// Builds a flow with an explicit library, variation model and
    /// workspace pool.
    ///
    /// # Errors
    ///
    /// As [`FlowBuilder::build`].
    #[deprecated(
        note = "use `BufferInsertionFlow::builder(..).library(..).model(..).pool(..).build()`"
    )]
    pub fn with_library_and_pool(
        circuit: &'a Circuit,
        cfg: FlowConfig,
        lib: Library,
        model: VariationModel,
        pool: Arc<WorkspacePool>,
    ) -> Result<Self, FlowError> {
        FlowBuilder::new(circuit, cfg)
            .library(lib)
            .model(model)
            .pool(pool)
            .build()
    }

    /// Whether this flow's sampling passes carry incremental solver state
    /// ([`FlowConfig::incremental`] gated by `PSBI_NO_INCREMENTAL`).
    /// Observability only — results are bit-identical either way.
    pub fn incremental_enabled(&self) -> bool {
        self.cfg.incremental && incremental_env_enabled()
    }

    /// Whether this flow's sampling passes dedup region solves across
    /// chips ([`FlowConfig::cross_chip`] gated by `PSBI_NO_CROSSCHIP`).
    /// Observability only — results are bit-identical either way.
    pub fn cross_chip_enabled(&self) -> bool {
        self.cfg.cross_chip && cross_chip_env_enabled()
    }

    /// Whether this flow's sampling passes fan region searches out across
    /// a worker pool ([`FlowConfig::region_parallel`] gated by
    /// `PSBI_NO_REGION_PARALLEL`, and only with ≥ 2 workers).
    /// Observability only — results are bit-identical either way.
    pub fn region_parallel_enabled(&self) -> bool {
        self.region_pool.is_some()
    }

    /// Whether this flow's region searches run with pruning (dominance,
    /// symmetry, bitset bounds) enabled ([`FlowConfig::search_prune`]
    /// gated by `PSBI_NO_SEARCH_PRUNE`).  Observability only — results
    /// are bit-identical either way.
    pub fn search_prune_enabled(&self) -> bool {
        self.cfg.search_prune && search_prune_env_enabled()
    }

    /// Whether `run_target` re-checks its result with the independent
    /// verifier ([`FlowConfig::verify`] or the `PSBI_VERIFY` environment
    /// switch).  The verifier only adds a [`crate::verify::VerifyReport`]
    /// to the diagnostics — canonical outputs are bit-identical either
    /// way.
    pub fn verify_enabled(&self) -> bool {
        self.cfg.verify || verify_env_enabled()
    }

    /// Frees this flow's incremental solver state from the shared pool:
    /// the per-chip state arenas parked between `run_target` calls and
    /// the cross-chip memo table.  Purely a memory-reclamation knob —
    /// subsequent `run_target` calls simply start cold (and re-create
    /// state lazily).  Campaign runners call this once a circuit's last
    /// sweep target has committed so a many-circuit campaign holds warm
    /// state only for the flows still in flight; callers must not invoke
    /// it concurrently with a `run_target` call on the same flow
    /// (released state would be resurrected when that call parks its
    /// arenas).
    pub fn release_solver_state(&self) {
        self.pool.release_owner(self.arena_id);
    }

    /// The workspace pool this flow draws workers' scratch from — hand it
    /// to further flows ([`BufferInsertionFlow::with_shared_pool`]) to
    /// share solver workspaces across a campaign.
    pub fn workspace_pool(&self) -> Arc<WorkspacePool> {
        Arc::clone(&self.pool)
    }

    /// The sequential timing graph the flow operates on.
    pub fn sequential_graph(&self) -> &SequentialGraph {
        &self.sg
    }

    /// The fixed clock-tree skews (ps, per dense FF index).
    pub fn skews(&self) -> &[f64] {
        &self.skews
    }

    /// Name of the sampling-kernel backend every pass of this flow runs
    /// on (`avx2`, `neon`, `portable`, or `scalar`) — the process-wide
    /// [`psbi_timing::simd::active`] selection, overridable with
    /// `PSBI_FORCE_SCALAR=1`.  All backends are bit-identical, so this is
    /// observability only: perf harnesses record it next to their
    /// timings.
    pub fn sampling_backend(&self) -> &'static str {
        psbi_timing::simd::active().name()
    }

    /// The flip-flop placement used for grouping distances.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Classifies fresh evaluation chips into speed bins (the paper's
    /// future-work "clock binning"), with and without the request's
    /// deployment buffers.
    pub fn speed_bins(&self, req: BinningRequest<'_>) -> crate::binning::BinningReport {
        let stream = stream_seed(self.cfg.seed, "yield");
        let mut gls = self
            .cfg
            .gate_level_sampling
            .then(|| GateLevelSampler::new(&self.tg));
        crate::binning::classify(
            &self.sg,
            req.deployment,
            &self.skews,
            req.periods,
            req.step,
            self.cfg.yield_samples,
            |k, st| self.fill_sample(stream, k, st, &mut gls),
        )
    }

    /// Classifies fresh evaluation chips into speed bins.
    #[deprecated(note = "build a `BinningRequest` and call `BufferInsertionFlow::speed_bins`")]
    pub fn evaluate_speed_bins(
        &self,
        deployment: &crate::yield_eval::Deployment,
        periods: &[f64],
        step: f64,
    ) -> crate::binning::BinningReport {
        self.speed_bins(BinningRequest::new(deployment, periods, step))
    }

    /// Builds the integer constraints of one chip from a named sample
    /// stream — lets examples and tests replay exact chips (e.g. the
    /// post-silicon configuration example replays the yield stream).
    pub fn chip_constraints(&self, req: SampleRequest<'_>) -> IntegerConstraints {
        let mut st = SampleTiming::for_graph(&self.sg);
        let mut gls = self
            .cfg
            .gate_level_sampling
            .then(|| GateLevelSampler::new(&self.tg));
        self.fill_sample(
            stream_seed(self.cfg.seed, req.stream),
            req.index,
            &mut st,
            &mut gls,
        );
        let mut ic = IntegerConstraints::for_graph(&self.sg);
        ic.build(&self.sg, &st, &self.skews, req.period, req.step);
        ic
    }

    /// Builds the integer constraints of one chip from a named sample
    /// stream.
    #[deprecated(note = "build a `SampleRequest` and call `BufferInsertionFlow::chip_constraints`")]
    pub fn sample_constraints(
        &self,
        stream: &str,
        index: u64,
        period: f64,
        step: f64,
    ) -> IntegerConstraints {
        self.chip_constraints(SampleRequest::new(stream, index, period, step))
    }

    /// Runs `f` under this flow's worker-thread cap: the explicit pool
    /// when [`FlowConfig::threads`] > 0, the global default otherwise.
    fn parallel<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.thread_pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }

    /// Fills `ws.batch` with chips `first .. first + len` of `stream`.
    fn fill_batch(&self, ws: &mut Workspace, stream: u64, first: u64, len: usize) {
        ws.batch.reset(&self.sg, len);
        if self.cfg.gate_level_sampling {
            let gls = ws
                .gls
                .get_or_insert_with(|| GateLevelSampler::new(&self.tg));
            ws.batch
                .fill_gate_level(&self.tg, &self.sg, gls, stream, first);
        } else {
            self.canon.fill(stream, first, &mut ws.batch);
        }
    }

    /// Fills `ws.cons` with the integer bounds of chips
    /// `first .. first + len` of `stream`: batch draw into the SoA buffers,
    /// then one streaming constraint-extraction pass.
    fn fill_cons_batch(
        &self,
        ws: &mut Workspace,
        stream: u64,
        first: u64,
        len: usize,
        period: f64,
        step: f64,
    ) {
        self.fill_batch(ws, stream, first, len);
        ws.cons
            .build_from(&self.sg, &ws.batch, &self.skews, period, step);
    }

    /// Draws one chip into a standalone [`SampleTiming`] — the replay path
    /// used by speed binning, [`BufferInsertionFlow::sample_constraints`]
    /// and the examples.  Chips produced here are bit-identical to the
    /// ones the batched passes evaluate (it draws through the same batch
    /// kernel), so replaying an evaluated chip reproduces it exactly.
    pub(crate) fn fill_sample(
        &self,
        stream: u64,
        index: u64,
        st: &mut SampleTiming,
        gls: &mut Option<GateLevelSampler>,
    ) {
        match gls {
            Some(g) => {
                let (globals, mut rng) = psbi_timing::sample::chip_rng(stream, index);
                g.sample(&self.tg, &self.sg, &globals, &mut rng, st);
            }
            None => self.canon.fill_one(stream, index, st),
        }
    }

    /// Splits `n` samples into fixed [`SAMPLE_CHUNK`]-sized work units and
    /// maps them in parallel, returning per-chunk results in chunk order.
    pub(crate) fn map_chunks<T: Send>(
        &self,
        n: usize,
        f: impl Fn(&mut Workspace, usize, usize) -> T + Sync,
    ) -> Vec<T> {
        let n_chunks = n.div_ceil(SAMPLE_CHUNK);
        psbi_obs::metrics::counter_add("flow.chunks", n_chunks as u64);
        self.parallel(|| {
            (0..n_chunks)
                .into_par_iter()
                .map(|c| {
                    let lo = c * SAMPLE_CHUNK;
                    let len = SAMPLE_CHUNK.min(n - lo);
                    let _span = psbi_obs::Span::enter_with(
                        "flow.chunk",
                        &[("lo", lo as u64), ("len", len as u64)],
                    );
                    self.pool.run(|ws| f(ws, lo, len))
                })
                .collect()
        })
    }

    /// Unbuffered Monte-Carlo calibration: (µT, σT, hold-fail fraction).
    /// Computed once per flow (it depends only on the circuit and seed)
    /// and cached for subsequent target-period runs.
    fn calibrate(&self) -> (f64, f64, f64) {
        *self.calibration.get_or_init(|| self.calibrate_uncached())
    }

    fn calibrate_uncached(&self) -> (f64, f64, f64) {
        let _span = psbi_obs::Span::enter("flow.calibrate");
        let _timer = psbi_obs::metrics::timer("flow.calibrate");
        let stream = stream_seed(self.cfg.seed, "calibrate");
        let n = self.cfg.calibration_samples;
        // Chip `k`'s period goes straight into slot `k`: chunks own
        // disjoint row ranges, so no lock and no merge pass.  The
        // hold-fail tally is an order-free sum, so a relaxed atomic is
        // deterministic too.
        let periods = DisjointSlots::<f64>::new(n);
        let hold_fails = AtomicU64::new(0);
        self.map_chunks(n, |ws, lo, len| {
            self.fill_batch(ws, stream, lo as u64, len);
            let mut chunk_hold_fails = 0u64;
            for row in 0..len {
                let mp = constraint::min_period_view(&self.sg, ws.batch.view(row), &self.skews);
                // SAFETY: this chunk exclusively owns rows lo..lo + len.
                unsafe { periods.write(lo + row, mp.period) };
                if !mp.hold_ok {
                    chunk_hold_fails += 1;
                }
            }
            hold_fails.fetch_add(chunk_hold_fails, Ordering::Relaxed);
        });
        let periods = periods.into_vec();
        (
            psbi_variation::mean(&periods),
            psbi_variation::stddev(&periods),
            hold_fails.load(Ordering::Relaxed) as f64 / n as f64,
        )
    }

    /// One parallel sampling pass over the insertion stream.
    ///
    /// `space` is this pass's **space epoch**: the flow wraps the working
    /// [`BufferSpace`] in a fresh `Arc` whenever it mutates it (after the
    /// prune, after window assignment), so passes sharing an unchanged
    /// space also share the `Arc` and the per-chip cache revalidation hits
    /// its `ptr_eq` fast path.  When `arena` is set, chip `k`'s
    /// [`ChipSolveState`] is threaded through the solve under the
    /// disjoint-chunk discipline.
    #[allow(clippy::too_many_arguments)]
    fn run_pass(
        &self,
        space: &Arc<BufferSpace>,
        arena: Option<&SolveStateArena>,
        memo: Option<&RegionMemo>,
        push: Push,
        targets: Option<&[f64]>,
        record_matrix: bool,
        period: f64,
        step: f64,
    ) -> PassOutput {
        let stream = stream_seed(self.cfg.seed, "insert");
        let n_ffs = self.sg.n_ffs;
        let samples = self.cfg.samples;

        // Slot map for the tuning matrix.
        let mut slot_of_ff = vec![NONE; n_ffs];
        let mut n_slots = 0u32;
        if record_matrix {
            for (slot, has) in slot_of_ff.iter_mut().zip(&space.has_buffer) {
                if *has {
                    *slot = n_slots;
                    n_slots += 1;
                }
            }
        }
        let slot_of_ff_ref = &slot_of_ff;

        // The tuning matrix is written straight into pre-sized per-sample
        // slots (column-major: `slot * samples + global_row`): each chunk
        // exclusively owns its global row range, so workers write without
        // locks and the matrix is in global sample order by construction —
        // no per-chunk row buffers, no concatenation merge.
        let matrix = record_matrix.then(|| DisjointSlots::<f32>::new(n_slots as usize * samples));
        let matrix_ref = matrix.as_ref();

        // Per-chip feasibility claims, written into disjoint slots like the
        // matrix — the independent verifier re-checks these against the raw
        // constraint system.
        let feasible = DisjointSlots::<bool>::new(samples);
        let feasible_ref = &feasible;

        struct Local {
            counts: Vec<u64>,
            hist: Vec<Histogram>,
            min_k: Vec<i64>,
            max_k: Vec<i64>,
            infeasible: u64,
            inexact: u64,
            diag: PassDiagnostics,
        }

        let locals: Vec<Local> = self.map_chunks(samples, |ws, lo, len| {
            self.fill_cons_batch(ws, stream, lo as u64, len, period, step);
            let mut local = Local {
                counts: vec![0; n_ffs],
                hist: vec![Histogram::new(); n_ffs],
                min_k: vec![i64::MAX; n_ffs],
                max_k: vec![i64::MIN; n_ffs],
                infeasible: 0,
                inexact: 0,
                diag: PassDiagnostics::default(),
            };
            let objective = match push {
                Push::CountOnly => PushObjective::None,
                Push::ToZero => PushObjective::ToZero,
                Push::ToTargets => {
                    PushObjective::ToTargets(targets.expect("targets provided for ToTargets"))
                }
            };
            // Split borrows: the sessions hold this chunk's constraint
            // views (shared) while the solver executes their searches
            // (exclusive).
            let solver = &mut ws.solver;
            let cons = &ws.cons;
            // One session per chip, driven to completion in chip order:
            // chips with no violations (or a provably unfixable one)
            // conclude inside `begin`; the rest plan their region
            // decomposition and fan the fresh searches out on the region
            // pool (when present), committing each round in pinned
            // region order.  Chips stay sequential so a chip's memo
            // publishes land before the next chip plans — the
            // within-chunk cross-chip replay path the memo tier exists
            // for — while the parallelism lives inside each round's
            // independent `RegionTask`s.
            let mut results: Vec<Option<SampleResult>> = vec![None; len];
            for (row, slot) in results.iter_mut().enumerate() {
                // SAFETY: rows lo..lo + len belong exclusively to this
                // chunk (fixed boundaries, each chunk claimed by exactly
                // one worker) and passes run sequentially, so no other
                // thread can touch these chip states while we hold them.
                let chip_state = arena.map(|arena| unsafe { arena.state_mut(lo + row) });
                let mut req = SolveRequest::shared(
                    &self.sg,
                    cons.view(row),
                    space,
                    objective,
                    &self.cfg.solver,
                )
                .search_prune(self.search_prune_enabled());
                if let Some(m) = memo {
                    req = req.memo(m);
                }
                if let Some(st) = chip_state {
                    req = req.state(st);
                }
                let mut session = solver.begin(req);
                while !session.is_done() {
                    let tasks = session.plan(solver);
                    let outcomes = solver.execute(
                        &tasks,
                        space,
                        &self.cfg.solver,
                        self.region_pool.as_ref(),
                        session.search_prune(),
                    );
                    session.commit(solver, &outcomes);
                }
                let out = session.finish();
                local.diag.merge(&out.diag);
                *slot = Some(out.result);
            }
            for (row, slot) in results.into_iter().enumerate() {
                let r = slot.expect("every chip concluded");
                // SAFETY: row `lo + row` belongs to this chunk alone.
                unsafe { feasible_ref.write(lo + row, r.feasible) };
                if !r.feasible {
                    local.infeasible += 1;
                } else {
                    if !r.exact {
                        local.inexact += 1;
                    }
                    for (ff, kv) in &r.tunings {
                        let f = *ff as usize;
                        local.counts[f] += 1;
                        local.hist[f].add(*kv);
                        local.min_k[f] = local.min_k[f].min(*kv);
                        local.max_k[f] = local.max_k[f].max(*kv);
                        if let Some(matrix) = matrix_ref {
                            let slot = slot_of_ff_ref[f];
                            if slot != NONE {
                                // SAFETY: row `lo + row` belongs to this
                                // chunk alone; untouched slots keep their
                                // pre-initialised 0.0 (no tuning).
                                unsafe {
                                    matrix.write(slot as usize * samples + lo + row, *kv as f32)
                                };
                            }
                        }
                    }
                }
            }
            local
        });

        // Merge the per-chunk reductions in chunk order (counts, histograms
        // and extrema are genuine folds; the bulky per-sample matrix was
        // already written in place above).
        let mut out = PassOutput {
            counts: vec![0; n_ffs],
            hist: vec![Histogram::new(); n_ffs],
            min_k: vec![i64::MAX; n_ffs],
            max_k: vec![i64::MIN; n_ffs],
            infeasible: 0,
            inexact: 0,
            diag: PassDiagnostics::default(),
            columns: matrix.map(|m| {
                let flat = m.into_vec();
                flat.chunks_exact(samples).map(|c| c.to_vec()).collect()
            }),
            slot_of_ff,
            feasible: feasible.into_vec(),
        };
        for local in locals {
            for ff in 0..n_ffs {
                out.counts[ff] += local.counts[ff];
                for (v, c) in local.hist[ff].iter() {
                    out.hist[ff].add_n(v, c);
                }
                out.min_k[ff] = out.min_k[ff].min(local.min_k[ff]);
                out.max_k[ff] = out.max_k[ff].max(local.max_k[ff]);
            }
            out.infeasible += local.infeasible;
            out.inexact += local.inexact;
            out.diag.merge(&local.diag);
        }
        out
    }

    /// Parallel yield evaluation on the fresh "yield" stream.
    fn evaluate_yield(&self, deployment: &Deployment, period: f64, step: f64) -> YieldReport {
        let _span = psbi_obs::Span::enter("flow.yield");
        let _timer = psbi_obs::metrics::timer("flow.yield");
        let stream = stream_seed(self.cfg.seed, "yield");
        let samples = self.cfg.yield_samples;
        let reports = self.map_chunks(samples, |ws, lo, len| {
            self.fill_cons_batch(ws, stream, lo as u64, len, period, step);
            let mut report = YieldReport::default();
            for row in 0..len {
                let cv = ws.cons.view(row);
                let baseline = cv.feasible_at_zero();
                let buffered =
                    deployment.chip_passes_view(&self.sg, cv, &mut ws.diff, &mut ws.arcs);
                report.record(baseline, buffered);
            }
            report
        });
        let mut merged = YieldReport::default();
        for r in &reports {
            merged.merge(r);
        }
        merged
    }

    /// Runs the complete flow at the configured target period.
    pub fn run(&self) -> InsertionResult {
        self.run_target(self.cfg.target)
    }

    /// Runs the complete flow at an explicit target period — the per-job
    /// entry point for campaign runners sweeping several targets over one
    /// circuit: the flow (timing graph, canonical sampler, workspace pool,
    /// µT/σT calibration) is built once and each call is an independent,
    /// deterministic job whose result depends only on the circuit, the
    /// configuration and `target` — never on which targets ran before it
    /// or concurrently with it.
    pub fn run_target(&self, target: TargetPeriod) -> InsertionResult {
        let _span =
            psbi_obs::Span::enter_with("flow.target", &[("samples", self.cfg.samples as u64)]);
        psbi_obs::metrics::counter_add("flow.targets", 1);
        let t_total = Instant::now();
        let steps = self.cfg.steps as i64;
        let n_ffs = self.sg.n_ffs;

        // Calibration (cached across calls).
        let t0 = Instant::now();
        let (mu_t, sigma_t, hold_fail_fraction) = self.calibrate();
        let period = match target {
            TargetPeriod::SigmaFactor(k) => mu_t + k * sigma_t,
            TargetPeriod::Absolute(t) => t,
        };
        let tau = period * self.cfg.range_fraction;
        let step = tau / self.cfg.steps as f64;
        let calibration_s = t0.elapsed().as_secs_f64();

        // The incremental state arenas for this target run: parked in the
        // pool between calls, so adjacent targets of a sweep start from
        // each other's decompositions (verified per chip before reuse).
        // Two arenas, one per space-epoch class: the A1 pass always runs
        // the floating space, so its arena survives from target to target
        // (cross-target reuse hinges only on the violated fingerprint),
        // while the post-prune passes would otherwise clobber it with
        // windowed-epoch state every target.
        let incremental = self.incremental_enabled();
        let a1_arena_owned = incremental.then(|| {
            self.pool
                .checkout_state_arena(2 * self.arena_id, self.cfg.samples)
        });
        let step_arena_owned = incremental.then(|| {
            self.pool
                .checkout_state_arena(2 * self.arena_id + 1, self.cfg.samples)
        });
        let a1_arena = a1_arena_owned.as_ref();
        let arena = step_arena_owned.as_ref();
        // The cross-chip memo table: shared (not checked out), so a fleet
        // sweeping several targets of this circuit concurrently deduples
        // across the whole job group.
        let memo_owned = self
            .cross_chip_enabled()
            .then(|| self.pool.checkout_region_memo(self.arena_id));
        let memo = memo_owned.as_deref();

        // ---- Step 1 ----
        let t1 = Instant::now();
        let mut space = BufferSpace::floating(n_ffs, steps);
        // First space epoch: the floating windows.
        let space_a1 = Arc::new(space.clone());
        let tp = Instant::now();
        let a1 = {
            let _span = psbi_obs::Span::enter("flow.pass.a1");
            let _timer = psbi_obs::metrics::timer("flow.pass.a1");
            self.run_pass(
                &space_a1,
                a1_arena,
                memo,
                Push::CountOnly,
                None,
                false,
                period,
                step,
            )
        };
        let pass_a1_s = tp.elapsed().as_secs_f64();
        let prune_report = prune(
            &self.sg,
            &a1.counts,
            &mut space,
            &self.cfg.prune,
            self.cfg.samples as u64,
        );
        let a3_push = if self.cfg.concentrate {
            Push::ToZero
        } else {
            Push::CountOnly
        };
        // Second epoch: the prune changed `has_buffer`.
        let space_a3 = Arc::new(space.clone());
        let tp = Instant::now();
        let a3 = {
            let _span = psbi_obs::Span::enter("flow.pass.a3");
            let _timer = psbi_obs::metrics::timer("flow.pass.a3");
            self.run_pass(&space_a3, arena, memo, a3_push, None, false, period, step)
        };
        let pass_a3_s = tp.elapsed().as_secs_f64();
        // Window assignment (III-A4): most-covering window containing 0.
        let mut miss_events = 0u64;
        for ff in 0..n_ffs {
            if !space.has_buffer[ff] {
                continue;
            }
            let (r, covered) = a3.hist[ff].best_window(steps, true);
            space.bounds[ff] = (r, r + steps);
            miss_events += a3.hist[ff].total() - covered;
        }
        let miss_fraction = miss_events as f64 / self.cfg.samples as f64;
        let step1_s = t1.elapsed().as_secs_f64();

        // ---- Step 2 ----
        let t2 = Instant::now();
        let refit_ran = miss_fraction >= self.cfg.skip_refit_threshold;
        // Third epoch: the assigned windows.  B1 and B2 share it (same
        // `Arc`), which is what lets B2 replay B1's search outcomes.
        let space_b = Arc::new(space.clone());
        let (b1, pass_b1_s) = if refit_ran {
            let tp = Instant::now();
            let b1 = {
                let _span = psbi_obs::Span::enter("flow.pass.b1");
                let _timer = psbi_obs::metrics::timer("flow.pass.b1");
                self.run_pass(
                    &space_b,
                    arena,
                    memo,
                    Push::CountOnly,
                    None,
                    false,
                    period,
                    step,
                )
            };
            (b1, tp.elapsed().as_secs_f64())
        } else {
            // Reuse the step-1 tunings (they already respect the windows).
            // The pass time stays 0: cloning the A3 output is bookkeeping,
            // not a solve, and warm-vs-cold comparisons sum these fields.
            let b1 = PassOutput {
                counts: a3.counts.clone(),
                hist: a3.hist.clone(),
                min_k: a3.min_k.clone(),
                max_k: a3.max_k.clone(),
                infeasible: a3.infeasible,
                inexact: a3.inexact,
                diag: PassDiagnostics::default(),
                columns: None,
                slot_of_ff: vec![NONE; n_ffs],
                feasible: a3.feasible.clone(),
            };
            (b1, 0.0)
        };
        // Per-buffer average tuning (mean of nonzero tunings, III-B2).
        let targets: Vec<f64> = (0..n_ffs)
            .map(|ff| {
                let h = &b1.hist[ff];
                let total = h.total();
                if total == 0 {
                    0.0
                } else {
                    h.iter().map(|(v, c)| v as f64 * c as f64).sum::<f64>() / total as f64
                }
            })
            .collect();
        let b2_push = if self.cfg.concentrate {
            Push::ToTargets
        } else {
            Push::CountOnly
        };
        let tp = Instant::now();
        let b2 = {
            let _span = psbi_obs::Span::enter("flow.pass.b2");
            let _timer = psbi_obs::metrics::timer("flow.pass.b2");
            self.run_pass(
                &space_b,
                arena,
                memo,
                b2_push,
                Some(&targets),
                true,
                period,
                step,
            )
        };
        let pass_b2_s = tp.elapsed().as_secs_f64();
        let step2_s = t2.elapsed().as_secs_f64();
        // Park the arenas for the next target of the sweep.
        if let Some(arena) = a1_arena_owned {
            self.pool.return_state_arena(arena);
        }
        if let Some(arena) = step_arena_owned {
            self.pool.return_state_arena(arena);
        }
        let memo_entries = memo.map_or(0, |m| m.len() as u64);

        // ---- Step 3 ----
        let t3 = Instant::now();
        // Final ranges: min/max observed tunings; unused buffers dropped.
        let mut candidates: Vec<BufferCandidate> = Vec::new();
        for ff in 0..n_ffs {
            if !space.has_buffer[ff] || b2.counts[ff] == 0 {
                continue;
            }
            let (mut lo, mut hi) = (b2.min_k[ff], b2.max_k[ff]);
            if self.cfg.force_zero_in_range {
                lo = lo.min(0);
                hi = hi.max(0);
            }
            let slot = b2.slot_of_ff[ff];
            let column = b2
                .columns
                .as_ref()
                .and_then(|c| (slot != NONE).then(|| c[slot as usize].clone()))
                .unwrap_or_default();
            candidates.push(BufferCandidate {
                ff,
                lo,
                hi,
                usage: b2.counts[ff],
                column,
            });
        }
        let buffers_before_grouping = candidates.len();
        let grouping = {
            let _span = psbi_obs::Span::enter("flow.group");
            let _timer = psbi_obs::metrics::timer("flow.group");
            group_buffers(&candidates, &self.placement, &self.cfg.grouping)
        };
        let deployment = Deployment::from_grouping(n_ffs, &grouping);
        let step3_s = t3.elapsed().as_secs_f64();

        // ---- Yield ----
        let t4 = Instant::now();
        let report = self.evaluate_yield(&deployment, period, step);
        let yield_s = t4.elapsed().as_secs_f64();

        // Fig. 5 snapshots for the most-used buffers.
        let mut snapshots = Vec::new();
        if self.cfg.record_histograms > 0 {
            let mut by_usage: Vec<&BufferCandidate> = candidates.iter().collect();
            by_usage.sort_by_key(|c| std::cmp::Reverse(c.usage));
            for cand in by_usage.into_iter().take(self.cfg.record_histograms) {
                let ff = cand.ff;
                snapshots.push(BufferSnapshot {
                    ff,
                    scattered: a1.hist[ff].iter().collect(),
                    pushed: a3.hist[ff].iter().collect(),
                    window: (space.bounds[ff].0, space.bounds[ff].1),
                    concentrated: b2.hist[ff].iter().collect(),
                    final_range: (cand.lo, cand.hi),
                });
            }
        }

        let groups = grouping.groups.clone();
        let ab = grouping.average_range();
        let mut result = InsertionResult {
            circuit: self.circuit.name.clone(),
            n_ffs,
            n_gates: self.circuit.num_gates(),
            mu_t,
            sigma_t,
            period,
            step,
            nb: groups.len(),
            ab,
            yield_baseline: 100.0 * report.yield_baseline(),
            yield_with_buffers: 100.0 * report.yield_buffered(),
            improvement: 100.0 * (report.yield_buffered() - report.yield_baseline()),
            rescued: report.rescued,
            broken: report.broken,
            groups,
            deployment,
            prune: prune_report,
            correlated_pairs: grouping.correlated_pairs,
            merged_pairs: grouping.merged_pairs,
            buffers_before_grouping,
            stats: StageStats {
                a1_infeasible: a1.infeasible,
                b2_infeasible: b2.infeasible,
                inexact_samples: a1.inexact + a3.inexact + b2.inexact,
                miss_fraction,
                refit_ran,
                a1_total_tunings: a1.counts.iter().sum(),
                hold_fail_fraction,
            },
            snapshots,
            runtime: RuntimeBreakdown {
                calibration_s,
                step1_s,
                step2_s,
                step3_s,
                yield_s,
                total_s: t_total.elapsed().as_secs_f64(),
                pass_a1_s,
                pass_a3_s,
                pass_b1_s,
                pass_b2_s,
            },
            diagnostics: FlowDiagnostics {
                a1: a1.diag,
                a3: a3.diag,
                b1: b1.diag,
                b2: b2.diag,
                memo_entries,
                resident_states: self.pool.resident_states(),
                peak_resident_states: self.pool.peak_resident_states(),
                verify: None,
            },
        };
        if self.verify_enabled() {
            let claims = crate::verify::PassClaims {
                space_floating: &space_a1,
                space_b: &space_b,
                a1_feasible: &a1.feasible,
                b2_feasible: &b2.feasible,
                b2_columns: b2.columns.as_deref(),
                b2_slot_of_ff: &b2.slot_of_ff,
                period,
                step,
            };
            result.diagnostics.verify =
                Some(crate::verify::verify_insertion(self, &claims, &result));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbi_netlist::bench_suite;

    fn quick_cfg() -> FlowConfig {
        FlowConfig {
            samples: 120,
            yield_samples: 300,
            calibration_samples: 300,
            seed: 7,
            threads: 2,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn end_to_end_on_tiny_circuit() {
        let c = bench_suite::tiny_demo(1);
        let flow = BufferInsertionFlow::builder(&c, quick_cfg())
            .build()
            .unwrap();
        let r = flow.run();
        assert_eq!(r.n_ffs, 24);
        assert!(r.mu_t > 0.0);
        assert!(r.sigma_t > 0.0);
        assert!(r.period >= r.mu_t * 0.5);
        // Baseline at µT should be mid-range, buffers should not hurt.
        assert!(
            r.yield_baseline > 20.0 && r.yield_baseline < 80.0,
            "baseline {}",
            r.yield_baseline
        );
        assert!(r.yield_with_buffers >= r.yield_baseline - 1e-9);
        assert!(r.runtime.total_s > 0.0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let c = bench_suite::tiny_demo(2);
        let mut cfg1 = quick_cfg();
        cfg1.threads = 1;
        let mut cfg4 = quick_cfg();
        cfg4.threads = 4;
        let r1 = BufferInsertionFlow::builder(&c, cfg1)
            .build()
            .unwrap()
            .run();
        let r4 = BufferInsertionFlow::builder(&c, cfg4)
            .build()
            .unwrap()
            .run();
        assert_eq!(r1.nb, r4.nb);
        assert_eq!(r1.groups, r4.groups);
        assert_eq!(r1.yield_with_buffers, r4.yield_with_buffers);
        assert_eq!(r1.yield_baseline, r4.yield_baseline);
    }

    #[test]
    fn higher_sigma_target_means_higher_baseline_yield() {
        let c = bench_suite::tiny_demo(3);
        let mut cfg0 = quick_cfg();
        cfg0.target = TargetPeriod::SigmaFactor(0.0);
        let mut cfg2 = quick_cfg();
        cfg2.target = TargetPeriod::SigmaFactor(2.0);
        let r0 = BufferInsertionFlow::builder(&c, cfg0)
            .build()
            .unwrap()
            .run();
        let r2 = BufferInsertionFlow::builder(&c, cfg2)
            .build()
            .unwrap()
            .run();
        assert!(
            r2.yield_baseline > r0.yield_baseline + 20.0,
            "2σ {} vs µ {}",
            r2.yield_baseline,
            r0.yield_baseline
        );
        assert!(r2.yield_baseline > 90.0);
    }

    #[test]
    fn absolute_period_is_respected() {
        let c = bench_suite::tiny_demo(4);
        let mut cfg = quick_cfg();
        cfg.target = TargetPeriod::Absolute(1234.5);
        let flow = BufferInsertionFlow::builder(&c, cfg).build().unwrap();
        let r = flow.run();
        assert_eq!(r.period, 1234.5);
    }

    #[test]
    fn snapshots_recorded_when_requested() {
        let c = bench_suite::tiny_demo(5);
        let mut cfg = quick_cfg();
        cfg.record_histograms = 2;
        let r = BufferInsertionFlow::builder(&c, cfg).build().unwrap().run();
        assert!(r.snapshots.len() <= 2);
        for s in &r.snapshots {
            assert!(!s.concentrated.is_empty());
            assert!(s.window.1 - s.window.0 == 20);
            assert!(s.final_range.0 <= s.final_range.1);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = bench_suite::tiny_demo(6);
        let mut cfg = quick_cfg();
        cfg.samples = 0;
        assert!(matches!(
            BufferInsertionFlow::builder(&c, cfg).build(),
            Err(FlowError::Config(_))
        ));
        let mut cfg = quick_cfg();
        cfg.steps = 0;
        assert!(BufferInsertionFlow::builder(&c, cfg).build().is_err());
        let mut cfg = quick_cfg();
        cfg.range_fraction = -1.0;
        assert!(BufferInsertionFlow::builder(&c, cfg).build().is_err());
    }

    #[test]
    fn grouping_never_increases_buffer_count() {
        let c = bench_suite::tiny_demo(8);
        let r = BufferInsertionFlow::builder(&c, quick_cfg())
            .build()
            .unwrap()
            .run();
        assert!(r.nb <= r.buffers_before_grouping);
        // Every group window must be within the floating range.
        for g in &r.groups {
            assert!(g.lo >= -20 && g.hi <= 20);
            assert!(g.lo <= g.hi);
        }
    }

    /// Wall-clock times legitimately differ between runs, and the cache
    /// counters legitimately differ with the arena's warm-up history —
    /// both are non-canonical by contract.
    fn no_runtime(mut r: InsertionResult) -> InsertionResult {
        r.runtime = Default::default();
        r.diagnostics = Default::default();
        r
    }

    #[test]
    fn incremental_state_is_bit_identical_to_cold_solves() {
        // A warm flow swept over adjacent targets (carrying its state
        // arena from target to target) must reproduce a cold
        // (`incremental = false`) flow bit-exactly at every point — the
        // in-process form of the `PSBI_NO_INCREMENTAL` contract.
        let c = bench_suite::tiny_demo(21);
        let warm_flow = BufferInsertionFlow::builder(&c, quick_cfg())
            .build()
            .unwrap();
        assert!(warm_flow.incremental_enabled());
        let mut cold_cfg = quick_cfg();
        cold_cfg.incremental = false;
        let cold_flow = BufferInsertionFlow::builder(&c, cold_cfg).build().unwrap();
        assert!(!cold_flow.incremental_enabled());
        let mut total_reused = 0u64;
        for k in [0.0, 0.25, 0.5] {
            let warm = warm_flow.run_target(TargetPeriod::SigmaFactor(k));
            let cold = cold_flow.run_target(TargetPeriod::SigmaFactor(k));
            // Cold runs must never reuse state, but they still report the
            // workload counters (regions_total / regions_saturated stay
            // observable with the cache off).
            let cold_totals = cold.diagnostics.total();
            assert_eq!(cold_totals.regions_reused, 0, "cold run reused state");
            assert_eq!(cold_totals.supports_rehit, 0, "cold run replayed a support");
            assert_eq!(
                cold_totals.regions_total,
                warm.diagnostics.total().regions_total,
                "warm and cold must process the same regions"
            );
            total_reused +=
                warm.diagnostics.total().regions_reused + warm.diagnostics.total().supports_rehit;
            assert_eq!(no_runtime(warm), no_runtime(cold), "k = {k}");
        }
        // The parity above must not be vacuous: the warm sweep actually
        // replayed state (B1/B2 share A3's decompositions at minimum).
        assert!(total_reused > 0, "warm sweep never reused any state");
    }

    #[test]
    fn run_target_sweep_matches_fresh_flows() {
        // One flow swept over several targets (cached calibration, reused
        // pool) must reproduce fresh single-target flows bit-exactly.
        let c = bench_suite::tiny_demo(11);
        let swept = BufferInsertionFlow::builder(&c, quick_cfg())
            .build()
            .unwrap();
        for k in [0.0, 1.0, 2.0] {
            let mut cfg = quick_cfg();
            cfg.target = TargetPeriod::SigmaFactor(k);
            let fresh = BufferInsertionFlow::builder(&c, cfg).build().unwrap().run();
            let sweep = swept.run_target(TargetPeriod::SigmaFactor(k));
            assert_eq!(no_runtime(fresh), no_runtime(sweep), "k = {k}");
        }
    }

    #[test]
    fn shared_pool_does_not_change_results() {
        let c1 = bench_suite::tiny_demo(12);
        let c2 = bench_suite::tiny_demo(13);
        let pool = Arc::new(WorkspacePool::new());
        let a = BufferInsertionFlow::builder(&c1, quick_cfg())
            .pool(Arc::clone(&pool))
            .build()
            .unwrap()
            .run();
        // Run a different circuit through the same (now warm) pool, then
        // the first again: pooled scratch must not leak between circuits.
        let _ = BufferInsertionFlow::builder(&c2, quick_cfg())
            .pool(Arc::clone(&pool))
            .build()
            .unwrap()
            .run();
        let b = BufferInsertionFlow::builder(&c1, quick_cfg())
            .pool(pool)
            .build()
            .unwrap()
            .run();
        let fresh = no_runtime(
            BufferInsertionFlow::builder(&c1, quick_cfg())
                .build()
                .unwrap()
                .run(),
        );
        assert_eq!(no_runtime(a), fresh);
        assert_eq!(no_runtime(b), fresh);
    }

    #[test]
    fn max_buffers_cap_enforced() {
        let c = bench_suite::tiny_demo(9);
        let mut cfg = quick_cfg();
        cfg.grouping.max_buffers = Some(1);
        let r = BufferInsertionFlow::builder(&c, cfg).build().unwrap().run();
        assert!(r.nb <= 1);
    }
}
