//! Vendored, offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the small `rayon` surface the PSBI workspace uses: `par_iter` over
//! `Range<usize>` with `map`/`for_each`/`collect`, plus
//! [`current_num_threads`].
//!
//! Scheduling model: a shared atomic work counter that idle workers pull
//! the next unclaimed index from — the same dynamic load-balancing property
//! as rayon's work-stealing deques for parallel-for workloads (a fast
//! worker that finishes its item immediately claims the next one; no
//! static pre-partitioning).  Results are written into per-index slots, so
//! `collect` preserves input order and the outcome is **bit-identical for
//! any thread count** whenever the per-index closure is deterministic.
//!
//! Thread count: `RAYON_NUM_THREADS` (if set and nonzero), else
//! `std::thread::available_parallelism()`.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Per-thread worker-count override (0 = none); see [`with_num_threads`].
    static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel iterators will use.
pub fn current_num_threads() -> usize {
    let overridden = NUM_THREADS_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        return overridden;
    }
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

/// Upstream-compatible scoped pool: `ThreadPoolBuilder::new()
/// .num_threads(n).build()?.install(f)` caps the parallel iterators
/// inside `f` at `n` workers.  In this shim a "pool" is just the cap (no
/// standing threads), but the API shape matches `rayon::ThreadPool`, so
/// callers compile unchanged against upstream.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` workers (`0` = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.  Infallible in this shim; the `Result` mirrors
    /// upstream's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type mirroring upstream's `ThreadPoolBuildError` (never produced
/// by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped worker-count cap (see [`ThreadPoolBuilder`]).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with parallel iterators capped at this pool's size.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_num_threads(self.num_threads, f)
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Runs `f` with parallel iterators on this thread capped at `n` worker
/// threads (`0` removes the cap).  Shim-internal primitive behind
/// [`ThreadPool::install`]; prefer the pool API in downstream code — it
/// is the part that exists upstream.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            NUM_THREADS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = NUM_THREADS_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(n);
        Restore(prev)
    });
    f()
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Slot vector that workers write disjoint indices into.
struct Slots<T> {
    cells: Vec<UnsafeCell<MaybeUninit<T>>>,
}

// SAFETY: every index is claimed by exactly one worker (fetch_add), so no
// two threads ever touch the same cell.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, || UnsafeCell::new(MaybeUninit::uninit()));
        Self { cells }
    }

    /// # Safety
    /// `i` must be claimed by exactly one caller, once.
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { (*self.cells[i].get()).write(value) };
    }

    /// # Safety
    /// Every slot must have been written exactly once.
    unsafe fn into_vec(self) -> Vec<T> {
        self.cells
            .into_iter()
            .map(|c| unsafe { c.into_inner().assume_init() })
            .collect()
    }
}

/// Runs `produce(i)` for every `i` in `start..end` across the thread pool,
/// returning results in index order.  Work distribution is dynamic: each
/// worker claims the next unprocessed index when it finishes one.
fn drive_map<T, F>(start: usize, end: usize, produce: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = end.saturating_sub(start);
    let workers = current_num_threads().min(n);
    if n == 0 {
        return Vec::new();
    }
    if workers <= 1 {
        return (start..end).map(produce).collect();
    }
    let slots = Slots::new(n);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = produce(start + i);
                // SAFETY: `i` came from fetch_add, so it is exclusive.
                unsafe { slots.write(i, value) };
            });
        }
    });
    // SAFETY: the scope joined all workers and the cursor covered 0..n.
    unsafe { slots.into_vec() }
}

/// Parallel iterator support (subset of `rayon::iter`).
pub mod iter {
    use super::drive_map;
    use std::ops::Range;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// The resulting parallel iterator type.
        type Iter;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = RangeParIter;
        fn into_par_iter(self) -> RangeParIter {
            RangeParIter { range: self }
        }
    }

    /// Parallel iterator over `Range<usize>`.
    pub struct RangeParIter {
        range: Range<usize>,
    }

    impl RangeParIter {
        /// Maps each index through `f` in parallel.
        pub fn map<T, F>(self, f: F) -> MapParIter<F>
        where
            T: Send,
            F: Fn(usize) -> T + Sync,
        {
            MapParIter {
                range: self.range,
                f,
            }
        }

        /// Runs `f` on each index in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(usize) + Sync,
        {
            drive_map(self.range.start, self.range.end, f);
        }
    }

    /// Mapped parallel iterator over `Range<usize>`.
    pub struct MapParIter<F> {
        range: Range<usize>,
        f: F,
    }

    /// Collection targets for [`ParallelIterator::collect`].
    pub trait FromParallelIterator<T> {
        /// Builds the collection from in-order results.
        fn from_ordered_vec(v: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(v: Vec<T>) -> Self {
            v
        }
    }

    /// Consuming operations on mapped parallel iterators.
    pub trait ParallelIterator {
        /// Element type.
        type Item: Send;

        /// Collects results, preserving input index order.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C;

        /// Consumes every element (results dropped).
        fn for_each_drop(self);
    }

    impl<T, F> ParallelIterator for MapParIter<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        type Item = T;

        fn collect<C: FromParallelIterator<T>>(self) -> C {
            let f = self.f;
            C::from_ordered_vec(drive_map(self.range.start, self.range.end, f))
        }

        fn for_each_drop(self) {
            let f = self.f;
            drive_map(self.range.start, self.range.end, |i| {
                f(i);
            });
        }
    }
}

/// `use rayon::prelude::*` convenience re-exports.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Re-export of [`Range`] driving helper for crates that need a plain
/// parallel-for without the iterator sugar.
pub fn par_for_each<F: Fn(usize) + Sync>(range: Range<usize>, f: F) {
    drive_map(range.start, range.end, f);
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
    }

    #[test]
    fn empty_range() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn for_each_touches_every_index() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn with_num_threads_overrides_and_restores() {
        let outer = super::current_num_threads();
        super::with_num_threads(1, || {
            assert_eq!(super::current_num_threads(), 1);
            let v: Vec<usize> = (0..10).into_par_iter().map(|i| i).collect();
            assert_eq!(v, (0..10).collect::<Vec<_>>());
        });
        assert_eq!(super::current_num_threads(), outer);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        // Items with wildly different costs still land in their slots.
        let v: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                let spins = if i % 7 == 0 { 200_000 } else { 10 };
                let mut acc = i as u64;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                // Deterministic per-index value regardless of spin count.
                std::hint::black_box(acc);
                i as u64
            })
            .collect();
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
