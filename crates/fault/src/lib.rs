#![warn(missing_docs)]
//! Deterministic fault injection for the PSBI workspace.
//!
//! A **failpoint** is a named site in production code where a test (or an
//! operator chasing a bug) can deterministically inject a failure.  Sites
//! are evaluated with the [`failpoint!`] macro, which returns `true` when
//! the site should fail *this* time:
//!
//! ```ignore
//! if psbi_fault::failpoint!("fleet.job.panic", "job" = j) {
//!     panic!("injected fault: fleet.job.panic (job {j})");
//! }
//! ```
//!
//! The macro only names the site and its context; the **failure mode**
//! (panic, torn write, corrupt replay, ...) is implemented at the call
//! site, so this crate stays dependency-free and policy-free.
//!
//! # Zero cost when disabled
//!
//! With no spec installed, [`failpoint!`] is a single relaxed atomic load
//! (`enabled()`), short-circuiting before any argument is packed.  No
//! site ever allocates on the disabled path.
//!
//! # Trigger grammar (`PSBI_FAULT_SPEC`)
//!
//! A spec is a `;`-separated list of rules, each `site[@cond,cond,...]`:
//!
//! ```text
//! fleet.job.panic@job=7;journal.write.torn@record=12;memo.replay.corrupt@nth=3
//! ```
//!
//! Conditions are `key=value` with `u64` values and must all match the
//! arguments the site passes.  Two keys are reserved for the trigger
//! counters instead of matching arguments:
//!
//! * `nth=K` — start firing at the `K`-th *matching* evaluation
//!   (1-based; default 1, i.e. fire from the first match);
//! * `times=N` — fire at most `N` times in total (default unlimited).
//!
//! Counters are per rule and advance only on evaluations whose arguments
//! match, so a spec's behaviour is a pure function of the (deterministic)
//! sequence of matching evaluations — the same property the repo's
//! journals rely on.
//!
//! Specs come from the `PSBI_FAULT_SPEC` environment variable (read once,
//! on first evaluation) or programmatically via [`install`] /
//! [`with_spec`] in tests.  [`with_spec`] serialises callers through a
//! global gate: faults are process-global, so concurrent tests must not
//! interleave spec installs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, PoisonError};

/// One parsed trigger rule.
#[derive(Debug, Clone)]
struct Rule {
    site: String,
    /// Argument conditions (`key=value`), all of which must match.
    conds: Vec<(String, u64)>,
    /// 1-based matching-evaluation count at which firing starts.
    nth: u64,
    /// Maximum number of fires (`None` = unlimited).
    times: Option<u64>,
    /// Matching evaluations seen so far.
    seen: u64,
    /// Fires so far.
    fired: u64,
}

/// Fast-path gate: `true` iff a non-empty spec is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// The installed rules (slow path only).
static REGISTRY: Mutex<Vec<Rule>> = Mutex::new(Vec::new());
/// One-shot `PSBI_FAULT_SPEC` environment read.
static ENV_INIT: Once = Once::new();
/// Serialises [`with_spec`] callers (faults are process-global).
static TEST_GATE: Mutex<()> = Mutex::new(());

fn registry() -> std::sync::MutexGuard<'static, Vec<Rule>> {
    // A panic *between* failpoint evaluations cannot leave the registry
    // mid-update (fire() holds the lock for the whole update), so a
    // poisoned registry is still consistent — recover it.
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether any fault spec is installed.  This is the macro's fast path:
/// one relaxed atomic load once the environment has been read.
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("PSBI_FAULT_SPEC") {
            if !spec.trim().is_empty() {
                if let Err(e) = install(&spec) {
                    // A malformed operator spec must not silently pass: a
                    // fault harness that injects nothing looks exactly
                    // like hardened code.  Fail loudly.
                    panic!("psbi_fault: malformed PSBI_FAULT_SPEC `{spec}`: {e}");
                }
            }
        }
    });
    ACTIVE.load(Ordering::Relaxed)
}

/// Evaluates site `site` with arguments `args`; `true` means the caller
/// should inject its failure now.  Prefer the [`failpoint!`] macro, which
/// short-circuits through [`enabled`] first.
pub fn fire(site: &str, args: &[(&str, u64)]) -> bool {
    let mut rules = registry();
    let mut any = false;
    for rule in rules.iter_mut() {
        if rule.site != site {
            continue;
        }
        let matches = rule
            .conds
            .iter()
            .all(|(k, v)| args.iter().any(|(ak, av)| ak == k && av == v));
        if !matches {
            continue;
        }
        rule.seen += 1;
        let exhausted = rule.times.is_some_and(|t| rule.fired >= t);
        if rule.seen >= rule.nth && !exhausted {
            rule.fired += 1;
            any = true;
        }
    }
    any
}

/// Installs `spec`, replacing any previous rules.
///
/// # Errors
///
/// A message naming the malformed rule or condition.
pub fn install(spec: &str) -> Result<(), String> {
    let mut rules = Vec::new();
    for rule_text in spec.split(';') {
        let rule_text = rule_text.trim();
        if rule_text.is_empty() {
            continue;
        }
        let (site, conds_text) = match rule_text.split_once('@') {
            Some((s, c)) => (s.trim(), Some(c)),
            None => (rule_text, None),
        };
        if site.is_empty() {
            return Err(format!("rule `{rule_text}` has an empty site name"));
        }
        let mut rule = Rule {
            site: site.to_string(),
            conds: Vec::new(),
            nth: 1,
            times: None,
            seen: 0,
            fired: 0,
        };
        if let Some(conds_text) = conds_text {
            for cond in conds_text.split(',') {
                let cond = cond.trim();
                if cond.is_empty() {
                    continue;
                }
                let Some((key, value)) = cond.split_once('=') else {
                    return Err(format!("condition `{cond}` is not `key=value`"));
                };
                let (key, value) = (key.trim(), value.trim());
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("condition `{cond}` needs an unsigned integer"))?;
                match key {
                    "nth" => {
                        if value == 0 {
                            return Err("`nth` is 1-based; 0 is invalid".into());
                        }
                        rule.nth = value;
                    }
                    "times" => rule.times = Some(value),
                    _ => rule.conds.push((key.to_string(), value)),
                }
            }
        }
        rules.push(rule);
    }
    let active = !rules.is_empty();
    *registry() = rules;
    ACTIVE.store(active, Ordering::Relaxed);
    Ok(())
}

/// Removes every installed rule (failpoints return to zero-cost).
pub fn clear() {
    registry().clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Runs `f` with `spec` installed, clearing it afterwards (also on
/// panic), serialised against every other [`with_spec`] caller.  An empty
/// spec runs `f` with faults guaranteed OFF — use it to compute fault-free
/// baselines in a test binary whose other tests inject faults.
pub fn with_spec<R>(spec: &str, f: impl FnOnce() -> R) -> R {
    let _gate = TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    struct ClearOnDrop;
    impl Drop for ClearOnDrop {
        fn drop(&mut self) {
            clear();
        }
    }
    let _clear = ClearOnDrop;
    if spec.trim().is_empty() {
        clear();
    } else {
        install(spec).expect("with_spec requires a well-formed fault spec");
    }
    f()
}

/// Evaluates a failpoint: `failpoint!("site")` or
/// `failpoint!("site", "key" = value, ...)` (values cast to `u64`).
/// Expands to a boolean expression that is a single atomic load when no
/// spec is installed.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::enabled() && $crate::fire($site, &[])
    };
    ($site:expr, $($key:literal = $value:expr),+ $(,)?) => {
        $crate::enabled() && $crate::fire($site, &[$(($key, $value as u64)),+])
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn disabled_failpoints_never_fire() {
        super::with_spec("", || {
            assert!(!failpoint!("some.site"));
            assert!(!failpoint!("some.site", "k" = 3));
        });
    }

    #[test]
    fn conditions_and_counters_are_deterministic() {
        super::with_spec("a.site@job=2,nth=2,times=1", || {
            // Wrong argument: never matches, counters untouched.
            assert!(!failpoint!("a.site", "job" = 1));
            // First match: nth=2 holds it back.
            assert!(!failpoint!("a.site", "job" = 2));
            // Second match fires...
            assert!(failpoint!("a.site", "job" = 2));
            // ...and times=1 exhausts the rule.
            assert!(!failpoint!("a.site", "job" = 2));
        });
    }

    #[test]
    fn multiple_rules_and_sites() {
        super::with_spec("x.one@n=1;x.two", || {
            assert!(failpoint!("x.two"));
            assert!(!failpoint!("x.one", "n" = 2));
            assert!(failpoint!("x.one", "n" = 1));
            assert!(!failpoint!("x.other"));
        });
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(super::install("site@k").is_err());
        assert!(super::install("site@k=x").is_err());
        assert!(super::install("@k=1").is_err());
        assert!(super::install("site@nth=0").is_err());
        super::clear();
    }

    #[test]
    fn clear_restores_zero_cost_path() {
        super::with_spec("y.site", || {
            assert!(failpoint!("y.site"));
        });
        assert!(!super::enabled() || !super::fire("y.site", &[]));
    }
}
