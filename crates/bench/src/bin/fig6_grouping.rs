//! Regenerates the paper's Fig. 6: grouping buffers by tuning correlation
//! (r ≥ 0.8) and Manhattan distance (≤ 10× minimum FF spacing).
//!
//! ```text
//! cargo run -p psbi-bench --release --bin fig6_grouping -- \
//!     [--circuits s9234] [--samples 2000] [--sigma 0] [--rt 0.8] [--dt 10]
//! ```

use psbi_bench::{run_cell, Args, ExperimentConfig};

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::parse(&args, &["s9234"]);
    let sigma: f64 = args.get("sigma").unwrap_or(0.0);
    let spec = cfg.circuits.first().expect("one circuit");
    let mut flow_cfg = cfg.flow_config(sigma);
    if let Some(rt) = args.get::<f64>("rt") {
        flow_cfg.grouping.correlation_threshold = rt;
    }
    if let Some(dt) = args.get::<f64>("dt") {
        flow_cfg.grouping.distance_factor = dt;
    }
    println!(
        "# Fig. 6 reproduction — grouping, circuit {}, r_t = {}, d_t = {}x spacing",
        spec.name, flow_cfg.grouping.correlation_threshold, flow_cfg.grouping.distance_factor
    );
    let r = run_cell(spec, flow_cfg);
    println!(
        "buffer candidates before grouping: {}",
        r.buffers_before_grouping
    );
    println!("pairs with correlation >= r_t:     {}", r.correlated_pairs);
    println!("pairs also within distance d_t:    {}", r.merged_pairs);
    println!("physical buffers after grouping:   {}", r.nb);
    println!(
        "average window range Ab:           {:.2} steps (max 20)",
        r.ab
    );
    println!();
    println!("groups (FF members, window, usage):");
    for (i, g) in r.groups.iter().enumerate() {
        println!(
            "  G{i:<3} members={:?} window=[{}, {}] usage={}",
            g.members, g.lo, g.hi, g.usage
        );
    }
    println!();
    println!(
        "yield: baseline {:.2}% -> buffered {:.2}% (Yi = {:.2} points)",
        r.yield_baseline, r.yield_with_buffers, r.improvement
    );
}
